//! Allocation regressions in the steady-state streaming paths, pinned
//! with a counting global allocator: repeated checkpoints reuse their
//! snapshot buffers, and repeated mid-stream queries (`finish_at_epoch`
//! / `snapshot_shard`) reuse their pooled decode buffers — per-call
//! allocation counts must stay flat, never grow with call count.
//!
//! This file holds exactly one `#[test]`: the harness runs a binary's
//! tests on concurrent threads, and a second test's allocations would
//! race the counters.

use ldp_heavy_hitters::prelude::*;
use ldp_heavy_hitters::sim::{run_pipelined, HhStream, PipelineConfig, StreamEngine, StreamPlan};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// `System`, with every allocation event counted.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_checkpoints_and_queries_do_not_grow_allocations() {
    let n = 4_000usize;
    let input = Workload::planted(256, vec![(9, 0.4)]).generate(n, 641);
    let params = ScanParams::new(n as u64, 256, 4.0, 0.1);
    let make = || ScanHeavyHitters::new(params.clone(), 642);
    let seed = 643;
    // Single-threaded plan: the engine under test must be the only
    // allocator client while we count.
    let plan = StreamPlan {
        epoch_size: n / 4,
        checkpoint_every: 1,
        dist: DistPlan {
            collectors: 2,
            chunk_size: 500,
            threads: 1,
            merge: MergeOrder::Tree,
        },
    };

    // ——— Lock-step engine ———
    let server = make();
    let mut engine = StreamEngine::new(HhStream(&server), plan.clone(), seed);
    engine.ingest_all(&input);

    // Steady-state checkpoints with an unchanged stream: the snapshot
    // buffers were sized by the cadence checkpoints above and the spool
    // is empty, so re-encoding must allocate NOTHING.
    let _ = engine.checkpoint(); // warm any lazily-sized buffer
    for round in 0..3 {
        let before = events();
        let _ = engine.checkpoint();
        assert_eq!(
            events() - before,
            0,
            "steady-state checkpoint {round} allocated"
        );
    }

    // Repeated mid-stream queries: per-query allocations (decoded
    // shards, merge, the fresh server's finish) are inherent, but the
    // count must be *flat* across calls — growth would mean the decode
    // path re-allocates per snapshot instead of reusing pooled state.
    let mut fresh = make();
    let _ = engine.finish_at_epoch(&mut fresh); // warm-up query
    let mut per_query = Vec::new();
    for _ in 0..4 {
        let mut fresh = make();
        let before = events();
        let estimates = engine.finish_at_epoch(&mut fresh);
        per_query.push(events() - before);
        assert!(!estimates.is_empty(), "vacuous query");
    }
    assert!(
        per_query.windows(2).all(|w| w[1] <= w[0]),
        "lock-step finish_at_epoch allocations grew across queries: {per_query:?}"
    );

    // Cold queries with a warm FinishScratch: a checkpoint between
    // queries invalidates the memoized answer, so each query re-runs the
    // full decode (`finish_with`) — but through the engine's warm
    // scratch, whose recycled buffers keep the per-query allocation
    // count flat across checkpoint stamps.
    let _ = engine.checkpoint();
    let _ = engine.finish_at_epoch(&mut make()); // warm the scratch pool
    let mut per_cold_query = Vec::new();
    for _ in 0..4 {
        let _ = engine.checkpoint(); // new stamp: next query must re-decode
        let mut fresh = make();
        let before = events();
        let estimates = engine.finish_at_epoch(&mut fresh);
        per_cold_query.push(events() - before);
        assert!(!estimates.is_empty(), "vacuous cold query");
    }
    assert!(
        per_cold_query.windows(2).all(|w| w[1] <= w[0]),
        "warm-scratch cold finish_at_epoch allocations grew across stamps: {per_cold_query:?}"
    );

    // ——— Pipelined session ———
    // Collector actors allocate deterministically too (threads are
    // quiescent between session calls — every command round-trip below
    // is synchronous), so per-query counts must be flat here as well:
    // snapshot replies land in pooled buffers after the first query.
    let server = make();
    let config = PipelineConfig {
        queue_depth: 2,
        workers: 1,
    };
    let (shard, _, per_query) =
        run_pipelined(&HhStream(&server), &plan, &config, seed, |session| {
            session.ingest_all(&input);
            let mut fresh = make();
            let _ = session.finish_at_epoch(&mut fresh); // warm-up: sizes the buffer pool
            let _ = session.finish_at_epoch(&mut make());
            let mut per_query = Vec::new();
            for _ in 0..4 {
                let mut fresh = make();
                let before = events();
                let estimates = session.finish_at_epoch(&mut fresh);
                per_query.push(events() - before);
                assert!(!estimates.is_empty(), "vacuous query");
            }
            per_query
        });
    assert!(
        per_query.windows(2).all(|w| w[1] <= w[0]),
        "pipelined finish_at_epoch allocations grew across queries: {per_query:?}"
    );

    // The counted runs must still answer correctly.
    let mut server = server;
    server.finish_shard(shard);
    let serial = {
        let mut s = make();
        run_heavy_hitter(&mut s, &input, seed).estimates
    };
    assert_eq!(server.finish(), serial);
}
