//! Distributional conformance of the word-level client sampling kernels.
//!
//! The kernels in `hh_math::sampler` replace the per-coin `f64` draws of
//! the client paths; these tests pin every flip probability they realize
//! against the *analytic* LDP marginals — RAPPOR's per-bit flip rate,
//! generalized randomized response's keep/lie split, the binary-RR bit
//! rate of the Hadamard-response reports (the bit kernel Hashtogram,
//! Bitstogram, Scan and the expander sketch all ride), and the uniform
//! row draw — plus a property test checking the bit-parallel Bernoulli
//! word kernel against a bit-at-a-time reference on the same coin words.

use ldp_heavy_hitters::freq::krr::KrrOracle;
use ldp_heavy_hitters::freq::rappor::Rappor;
use ldp_heavy_hitters::math::sampler::Uniform64;
use ldp_heavy_hitters::math::wht::hadamard_entry;
use ldp_heavy_hitters::prelude::*;

/// Pearson chi-square statistic of observed counts against expected
/// probabilities (counts and probabilities in matching order).
fn chi_square(counts: &[u64], probs: &[f64], total: u64) -> f64 {
    assert_eq!(counts.len(), probs.len());
    counts
        .iter()
        .zip(probs)
        .map(|(&c, &p)| {
            let e = p * total as f64;
            (c as f64 - e) * (c as f64 - e) / e
        })
        .sum()
}

/// Half-width of a `z`-sigma binomial confidence interval on a rate.
fn binomial_ci(p: f64, n: u64, z: f64) -> f64 {
    z * (p * (1.0 - p) / n as f64).sqrt()
}

#[test]
fn rappor_per_bit_flip_rate_is_analytic() {
    let domain = 64u64;
    let eps = 1.0f64;
    let oracle = Rappor::new(domain, eps);
    // Analytic per-bit keep rate: e^{ε/2}/(e^{ε/2} + 1) (sensitivity-2
    // one-hot flipping splits the budget over the two differing bits).
    let keep = (eps / 2.0).exp() / ((eps / 2.0).exp() + 1.0);
    assert!((oracle.keep_probability() - keep).abs() < 1e-15);
    let q = 1.0 - keep;

    let x = 13u64;
    let n = 30_000u64;
    let mut rng = seeded_rng(0xF11F);
    let mut flipped = 0u64;
    for i in 0..n {
        let rep = oracle.respond(i, x, &mut rng);
        for j in 0..domain {
            let sent = rep[(j / 8) as usize] >> (j % 8) & 1;
            let truth = u64::from(j == x) as u8;
            flipped += u64::from(sent != truth);
        }
    }
    let trials = n * domain;
    let rate = flipped as f64 / trials as f64;
    let tol = binomial_ci(q, trials, 5.0);
    assert!(
        (rate - q).abs() < tol,
        "per-bit flip rate {rate} vs analytic {q} (±{tol})"
    );
}

#[test]
fn grr_keep_lie_split_is_analytic() {
    let k = 16u64;
    let eps = 1.2f64;
    let oracle = KrrOracle::new(k, eps);
    // Analytic GRR marginals: truth with e^ε/(e^ε + k − 1), each lie
    // with 1/(e^ε + k − 1).
    let denom = eps.exp() + (k - 1) as f64;
    let p_true = eps.exp() / denom;
    let p_lie = 1.0 / denom;
    assert!((oracle.randomizer().kernel().p_keep() - p_true).abs() < 1e-15);

    let truth = 5u64;
    let n = 200_000u64;
    let mut rng = seeded_rng(0x96B);
    let mut counts = vec![0u64; k as usize];
    for i in 0..n {
        counts[oracle.respond(i, truth, &mut rng) as usize] += 1;
    }
    let probs: Vec<f64> = (0..k)
        .map(|v| if v == truth { p_true } else { p_lie })
        .collect();
    let stat = chi_square(&counts, &probs, n);
    // chi² with 15 degrees of freedom: P(stat > 37.7) ≈ 0.001.
    assert!(stat < 45.0, "GRR keep/lie chi-square {stat}");
    let kept = counts[truth as usize] as f64 / n as f64;
    let tol = binomial_ci(p_true, n, 5.0);
    assert!(
        (kept - p_true).abs() < tol,
        "keep rate {kept} vs analytic {p_true} (±{tol})"
    );
}

#[test]
fn hadamard_report_bit_rr_rate_is_analytic() {
    // The one ε-RR bit of a Hadamard-response report — the bit kernel
    // every composite protocol (Bitstogram's and the sketch's inner and
    // outer halves, Scan) routes through Hashtogram. The true bit is
    // recomputable from public randomness, so the keep rate is
    // observable exactly.
    let eps = 1.0f64;
    let keep = eps.exp() / (eps.exp() + 1.0);
    let params = HashtogramParams::hashed(1 << 14, 1 << 10, eps, 0.1);
    let oracle = Hashtogram::new(params, 0xA11CE);

    let x = 77u64;
    let n = 120_000u64;
    let mut rng = seeded_rng(0xB17);
    let mut kept_count = 0u64;
    for i in 0..n {
        let rep = oracle.respond(i, x, &mut rng);
        let g = oracle.group_of(i);
        let true_pm = i64::from(hadamard_entry(rep.ell, oracle.bucket(g, x))) * oracle.sign(g, x);
        let true_bit: i8 = if true_pm > 0 { 1 } else { -1 };
        kept_count += u64::from(rep.bit == true_bit);
    }
    let rate = kept_count as f64 / n as f64;
    let tol = binomial_ci(keep, n, 5.0);
    assert!(
        (rate - keep).abs() < tol,
        "RR bit keep rate {rate} vs analytic {keep} (±{tol})"
    );
}

#[test]
fn uniform_row_draw_is_uniform_on_awkward_span() {
    // Non-power-of-two span: the Lemire rejection cutoff must leave the
    // draw exactly uniform (the pre-kernel `u128 %` path was biased).
    let span = 11u64;
    let u = Uniform64::new(span);
    let mut rng = client_rng(0xD1CE, 0);
    let n = 110_000u64;
    let mut counts = vec![0u64; span as usize];
    for _ in 0..n {
        counts[u.sample(&mut rng) as usize] += 1;
    }
    let probs = vec![1.0 / span as f64; span as usize];
    let stat = chi_square(&counts, &probs, n);
    // chi² with 10 degrees of freedom: P(stat > 29.6) ≈ 0.001.
    assert!(stat < 35.0, "uniform row chi-square {stat}");
}

mod word_kernel_reference {
    //! The bit-parallel Bernoulli kernel against a bit-at-a-time
    //! reference on identical coin words: lane `j` compares the binary
    //! expansion of its uniform (bit `i` = bit `j` of word `i`) against
    //! the threshold's expansion, MSB first; the lane is 1 exactly when
    //! the first differing position has the threshold bit set.

    use ldp_heavy_hitters::math::sampler::Bernoulli;
    use ldp_heavy_hitters::prelude::*;
    use proptest::prelude::*;
    use rand::{Rng, RngCore};

    /// Replays a recorded word sequence; panics if the kernel reads past
    /// the recording (it must consume at most 64 words).
    struct Replay<'a> {
        words: &'a [u64],
        pos: usize,
    }

    impl RngCore for Replay<'_> {
        fn next_u64(&mut self) -> u64 {
            let w = self.words[self.pos];
            self.pos += 1;
            w
        }
    }

    fn reference(threshold: u64, words: &[u64]) -> u64 {
        let mut out = 0u64;
        for lane in 0..64 {
            for (i, word) in words.iter().enumerate().take(64) {
                // Remaining threshold bits all zero: the lane's uniform
                // cannot still drop below it — decided 0.
                if threshold << i == 0 {
                    break;
                }
                let tb = (threshold >> (63 - i)) & 1;
                let b = (word >> lane) & 1;
                if b != tb {
                    out |= tb << lane;
                    break;
                }
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn word_kernel_matches_bit_at_a_time_reference(
            raw in 0u64..u64::MAX,
            word_seed in 0u64..u64::MAX,
        ) {
            // p with exactly the f64's 53 significand bits, so the
            // constructed threshold is the exact scaled value.
            let p = (raw >> 11) as f64 * 2f64.powi(-53);
            let b = Bernoulli::new(p);
            prop_assert_eq!(b.threshold(), (raw >> 11) << 11);

            let mut src = seeded_rng(word_seed);
            let words: Vec<u64> = (0..64).map(|_| src.gen()).collect();
            let mut replay = Replay { words: &words, pos: 0 };
            let got = b.sample_word(&mut replay);
            prop_assert_eq!(got, reference(b.threshold(), &words));
            // The kernel never reads more rounds than the threshold has
            // significant bits.
            prop_assert!(replay.pos <= 64 - b.threshold().trailing_zeros() as usize);
        }
    }
}
