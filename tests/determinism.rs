//! Reproducibility: all protocol randomness flows from explicit seeds,
//! so identical seeds give identical transcripts and outputs.

use ldp_heavy_hitters::prelude::*;

#[test]
fn sketch_runs_are_bit_identical_under_fixed_seeds() {
    let n = 1usize << 14;
    let params = SketchParams::optimal(n as u64, 16, 4.0, 0.2);
    let data = Workload::planted(1 << 16, vec![(42, 0.4)]).generate(n, 51);
    let run = |seed: u64| {
        let mut s = ExpanderSketch::new(params.clone(), seed);
        run_heavy_hitter(&mut s, &data, derive_seed(seed, 9)).estimates
    };
    assert_eq!(run(1), run(1));
    // Different public randomness generally changes the transcript; the
    // recovered heavy hitter must persist regardless.
    let a = run(1);
    let b = run(2);
    assert!(a.iter().any(|&(x, _)| x == 42));
    assert!(b.iter().any(|&(x, _)| x == 42));
}

#[test]
fn oracle_runs_are_bit_identical_under_fixed_seeds() {
    let n = 20_000usize;
    let data = Workload::zipf(1 << 16, 1.3).generate(n, 61);
    let queries: Vec<u64> = (0..32).collect();
    let run = |seed: u64| {
        let mut o = Hashtogram::new(HashtogramParams::hashed(n as u64, 1 << 16, 1.0, 0.1), seed);
        run_oracle(&mut o, &data, &queries, derive_seed(seed, 3)).answers
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

#[test]
fn workload_generation_is_stable() {
    let w = Workload::url_telemetry(1 << 40, 500, 0.7, 1.2);
    assert_eq!(w.generate(1000, 7), w.generate(1000, 7));
}

#[test]
fn public_randomness_is_one_seed() {
    // Everything a client needs is derivable from (params, seed, index):
    // two independently constructed servers agree on every public value.
    let params = SketchParams::optimal(1 << 14, 24, 1.0, 0.1);
    let a = ExpanderSketch::new(params.clone(), 77);
    let b = ExpanderSketch::new(params, 77);
    for i in 0..500u64 {
        assert_eq!(a.coord_of(i), b.coord_of(i));
    }
    for x in [0u64, 1, 0xFFFF, 0xABCDE] {
        assert_eq!(a.bucket_of(x), b.bucket_of(x));
        assert_eq!(a.cell_of(3, x), b.cell_of(3, x));
    }
}
