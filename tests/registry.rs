//! Registry round-trips: every registered protocol name constructs,
//! runs through the type-erased drivers, and produces bit-for-bit the
//! output of direct typed construction with the same parameters — so
//! registry dispatch is a naming layer, never a behavior change.

use ldp_heavy_hitters::core::baselines::{
    BassilySmithHeavyHitters, Bitstogram, BitstogramParams, BsHhParams, ScanHeavyHitters,
    ScanParams,
};
use ldp_heavy_hitters::freq::bassily_smith::BassilySmithOracle;
use ldp_heavy_hitters::freq::krr::KrrOracle;
use ldp_heavy_hitters::freq::rappor::Rappor;
use ldp_heavy_hitters::prelude::*;
use ldp_heavy_hitters::sim::registry::{
    build_hh, build_oracle, hh_names, oracle_names, ProtocolSpec,
};
use ldp_heavy_hitters::sim::{
    run_dyn_heavy_hitter, run_dyn_heavy_hitter_batched, run_dyn_oracle, run_dyn_oracle_batched,
    run_pipelined, DynHhStream, PipelineConfig, StreamPlan,
};

fn spec(n: usize) -> ProtocolSpec {
    ProtocolSpec {
        n: n as u64,
        domain: 256,
        eps: 4.0,
        beta: 0.2,
        seed: 551,
    }
}

/// The typed construction each registry name promises — the independent
/// reference the dyn path is pinned against. Adding a protocol to the
/// registry without extending this match fails the exhaustiveness
/// assertions below.
fn typed_hh_estimates(name: &str, s: &ProtocolSpec, data: &[u64], seed: u64) -> Vec<(u64, f64)> {
    match name {
        "expander_sketch" => {
            let p = SketchParams::optimal(s.n, s.domain_bits(), s.eps, s.beta);
            run_heavy_hitter(&mut ExpanderSketch::new(p, s.seed), data, seed).estimates
        }
        "scan" => {
            let p = ScanParams::new(s.n, s.domain, s.eps, s.beta);
            run_heavy_hitter(&mut ScanHeavyHitters::new(p, s.seed), data, seed).estimates
        }
        "bitstogram" => {
            let p = BitstogramParams::optimal(s.n, s.domain_bits(), s.eps, s.beta);
            run_heavy_hitter(&mut Bitstogram::new(p, s.seed), data, seed).estimates
        }
        "bassily_smith_hh" => {
            let p = BsHhParams::optimal(s.n, s.domain, s.eps, s.beta);
            run_heavy_hitter(&mut BassilySmithHeavyHitters::new(p, s.seed), data, seed).estimates
        }
        other => panic!("registry gained heavy-hitter protocol {other:?} — extend this test"),
    }
}

fn typed_oracle_answers(
    name: &str,
    s: &ProtocolSpec,
    data: &[u64],
    queries: &[u64],
    seed: u64,
) -> Vec<f64> {
    match name {
        "hashtogram" => {
            let p = HashtogramParams::hashed(s.n, s.domain, s.eps, s.beta);
            run_oracle(&mut Hashtogram::new(p, s.seed), data, queries, seed).answers
        }
        "krr" => run_oracle(&mut KrrOracle::new(s.domain, s.eps), data, queries, seed).answers,
        "rappor" => run_oracle(&mut Rappor::new(s.domain, s.eps), data, queries, seed).answers,
        "bassily_smith" => {
            let mut o = BassilySmithOracle::new(s.domain, s.eps, s.n, s.seed);
            run_oracle(&mut o, data, queries, seed).answers
        }
        other => panic!("registry gained frequency oracle {other:?} — extend this test"),
    }
}

#[test]
fn every_hh_name_constructs_runs_and_matches_direct_construction() {
    let n = 3_000usize;
    let s = spec(n);
    let data = Workload::planted(s.domain, vec![(17, 0.45)]).generate(n, 552);
    let seed = 553;
    let names = hh_names();
    assert_eq!(names.len(), 4, "registry changed — extend this test");
    for name in names {
        let typed = typed_hh_estimates(name, &s, &data, seed);
        // Serial dyn driver (per-user wire path).
        let serial = {
            let mut server = build_hh(name, &s).expect("registered name builds");
            run_dyn_heavy_hitter(server.as_mut(), &data, seed)
        };
        assert_eq!(
            serial.estimates, typed,
            "{name}: registry serial run diverged from direct construction"
        );
        assert!(serial.report_bits > 0 && serial.memory_bytes > 0);
        // Batched dyn driver (shared fused pipeline).
        let batched = {
            let mut server = build_hh(name, &s).expect("registered name builds");
            run_dyn_heavy_hitter_batched(
                server.as_mut(),
                &data,
                seed,
                &BatchPlan::with_chunk_size(777),
            )
        };
        assert_eq!(
            batched.estimates, typed,
            "{name}: registry batched run diverged from direct construction"
        );
    }
}

#[test]
fn every_oracle_name_constructs_runs_and_matches_direct_construction() {
    let n = 3_000usize;
    let s = spec(n);
    let data = Workload::planted(s.domain, vec![(17, 0.45)]).generate(n, 554);
    let queries = [17u64, 3, 250];
    let seed = 555;
    let names = oracle_names();
    assert_eq!(names.len(), 4, "registry changed — extend this test");
    for name in names {
        let typed = typed_oracle_answers(name, &s, &data, &queries, seed);
        let serial = {
            let mut oracle = build_oracle(name, &s).expect("registered name builds");
            run_dyn_oracle(oracle.as_mut(), &data, &queries, seed)
        };
        assert_eq!(
            serial.answers, typed,
            "{name}: registry serial run diverged from direct construction"
        );
        let batched = {
            let mut oracle = build_oracle(name, &s).expect("registered name builds");
            run_dyn_oracle_batched(
                oracle.as_mut(),
                &data,
                &queries,
                seed,
                &BatchPlan::with_chunk_size(777),
            )
        };
        assert_eq!(
            batched.answers, typed,
            "{name}: registry batched run diverged from direct construction"
        );
    }
}

#[test]
fn registry_protocols_stream_through_the_pipelined_runtime() {
    // Registry + pipelined runtime end to end: a short crash-recovery
    // stream per registered heavy hitter, pinned against the dyn serial
    // reference (itself pinned against typed construction above).
    let n = 2_400usize;
    let s = spec(n);
    let data = Workload::planted(s.domain, vec![(17, 0.45)]).generate(n, 556);
    let seed = 557;
    let plan = StreamPlan {
        epoch_size: n / 5 + 1,
        checkpoint_every: 2,
        dist: DistPlan {
            collectors: 3,
            chunk_size: n / 13 + 1,
            threads: 2,
            merge: MergeOrder::Tree,
        },
    };
    let config = PipelineConfig {
        queue_depth: 2,
        workers: 2,
    };
    for name in hh_names() {
        let serial = {
            let mut server = build_hh(name, &s).expect("registered name builds");
            run_dyn_heavy_hitter(server.as_mut(), &data, seed).estimates
        };
        let server = build_hh(name, &s).expect("registered name builds");
        let (shard, stats, ()) = run_pipelined(
            &DynHhStream(server.as_ref()),
            &plan,
            &config,
            seed,
            |session| {
                let mut off = 0;
                while off < data.len() {
                    let hi = (off + plan.epoch_size).min(data.len());
                    session.ingest_epoch(&data[off..hi]);
                    off = hi;
                    if session.epoch() == 2 {
                        session.kill_collector(1);
                    }
                    if session.epoch() == 3 {
                        session.recover_collector(1);
                    }
                }
            },
        );
        let mut server = server;
        server.finish_shard(shard);
        assert_eq!(
            server.finish(),
            serial,
            "{name}: pipelined stream diverged from serial"
        );
        assert_eq!(stats.users as usize, n);
        assert!(stats.recoveries >= 1, "{name}: crash was never recovered");
    }
}

#[test]
#[should_panic(expected = "it was produced by a different protocol")]
fn cross_protocol_shards_are_rejected_with_a_named_panic() {
    let s = spec(100);
    let scan = build_hh("scan", &s).expect("registered");
    let sketch = build_hh("expander_sketch", &s).expect("registered");
    let foreign = sketch.new_shard();
    let mut scan = scan;
    // A scan server handed an expander-sketch shard must name the
    // mismatch instead of corrupting state.
    scan.finish_shard(foreign);
}

#[test]
fn unknown_names_are_rejected() {
    let s = spec(100);
    assert!(build_hh("heavy_hitter_3000", &s).is_none());
    assert!(build_oracle("heavy_hitter_3000", &s).is_none());
    // Protocol and oracle namespaces are disjoint.
    assert!(build_hh("krr", &s).is_none());
    assert!(build_oracle("expander_sketch", &s).is_none());
}
