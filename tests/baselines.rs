//! Protocol-vs-baseline integration: the error orderings the paper's
//! Table 1 asserts, measured.

use ldp_heavy_hitters::core::baselines::BitstogramParams;
use ldp_heavy_hitters::core::verify;
use ldp_heavy_hitters::prelude::*;

/// Table 1's headline: our detection threshold matches prior work at
/// moderate β and beats it by ~sqrt(log(1/β)) at small β — at every n.
#[test]
fn threshold_separation_grows_with_beta() {
    for &n in &[1u64 << 14, 1 << 18, 1 << 22] {
        let ratio_at = |beta: f64| {
            let ours = SketchParams::optimal(n, 32, 1.0, beta).detection_threshold();
            let theirs = BitstogramParams::optimal(n, 32, 1.0, beta).detection_threshold();
            theirs / ours
        };
        let r_mild = ratio_at(0.25);
        let r_tiny = ratio_at(1e-9);
        assert!(
            r_tiny > 2.0 * r_mild,
            "n={n}: separation should grow: {r_mild:.2} -> {r_tiny:.2}"
        );
        assert!(r_tiny > 3.0, "n={n}: tiny-beta separation {r_tiny}");
    }
}

/// Both our protocol and the exhaustive scan must find the same planted
/// heavy hitter on the same data (the scan is ground-truth-quality on a
/// small domain).
#[test]
fn sketch_agrees_with_scan_on_small_domain() {
    let n = 1usize << 17;
    let eps = 4.0;
    let sketch_params = SketchParams::optimal(n as u64, 16, eps, 0.1);
    let delta = sketch_params.detection_threshold();
    let frac = (1.5 * delta / n as f64).min(0.45);
    let workload = Workload::planted(1 << 16, vec![(0xFEED, frac)]);
    let data = workload.generate(n, 31);

    let sketch_est = {
        let mut s = ExpanderSketch::new(sketch_params, 32);
        run_heavy_hitter(&mut s, &data, 33).estimates
    };
    let scan_est = {
        let mut s = ScanHeavyHitters::new(ScanParams::new(n as u64, 1 << 16, eps, 0.1), 34);
        run_heavy_hitter(&mut s, &data, 35).estimates
    };
    assert!(
        sketch_est.iter().any(|&(x, _)| x == 0xFEED),
        "{sketch_est:?}"
    );
    assert!(scan_est.iter().any(|&(x, _)| x == 0xFEED));
    // Both estimate the count consistently (within their noise scales).
    let truth = verify::histogram(&data)[&0xFEED] as f64;
    let sk = sketch_est.iter().find(|&&(x, _)| x == 0xFEED).unwrap().1;
    let sc = scan_est.iter().find(|&&(x, _)| x == 0xFEED).unwrap().1;
    assert!((sk - truth).abs() < 0.1 * truth, "sketch {sk} vs {truth}");
    assert!((sc - truth).abs() < 0.1 * truth, "scan {sc} vs {truth}");
}

/// Resource shape: the sketch's report is O(log n) bits while RAPPOR-
/// style one-hot reports are Ω(|X|); the sketch's memory is o(|X|).
#[test]
fn resource_shape_vs_domain() {
    let n = 1u64 << 16;
    let p16 = SketchParams::optimal(n, 16, 1.0, 0.1);
    let p40 = SketchParams::optimal(n, 40, 1.0, 0.1);
    let s16 = ExpanderSketch::new(p16, 1);
    let s40 = ExpanderSketch::new(p40, 1);
    // Report size grows (at most) logarithmically with |X|...
    let b16 = s16.report_bits();
    let b40 = s40.report_bits();
    assert!(b40 <= b16 + 24, "report bits jumped: {b16} -> {b40}");
    // ...while a one-hot report would grow 2^24-fold.
    assert!(b40 < 128);
}
