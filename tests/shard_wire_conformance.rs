//! Shard-codec conformance: for every heavy-hitter protocol and
//! frequency oracle, a collector shard survives the `WireShard`
//! encode → decode round trip *observationally* — merging and finishing
//! decoded shards is bit-for-bit identical to never-encoded shards —
//! `shard_encoded_len` is exact, re-encoding a decoded shard reproduces
//! the original bytes (the codec is canonical), and malformed snapshot
//! bytes are rejected rather than absorbed.
//!
//! The property half: snapshot + replay recovery from a random epoch
//! equals uninterrupted streaming, for random epoch sizes, checkpoint
//! cadences, crash times and crash nodes.
//!
//! This is what makes shards *durable artifacts*: a checkpoint written
//! as bytes is as good as the live aggregate it came from.

use ldp_heavy_hitters::core::baselines::{
    BassilySmithHeavyHitters, Bitstogram, BitstogramParams, BsHhParams, ScanHeavyHitters,
    ScanParams,
};
use ldp_heavy_hitters::core::SketchShard;
use ldp_heavy_hitters::freq::bassily_smith::BassilySmithOracle;
use ldp_heavy_hitters::freq::krr::KrrOracle;
use ldp_heavy_hitters::freq::rappor::Rappor;
use ldp_heavy_hitters::freq::HashtogramShard;
use ldp_heavy_hitters::prelude::*;

fn inputs(n: usize, domain: u64, seed: u64) -> Vec<u64> {
    Workload::planted(domain, vec![(domain / 3, 0.3)]).generate(n, seed)
}

/// Round-trip both shards through bytes, checking exact lengths and
/// canonical re-encoding; returns the decoded pair.
fn round_trip<S: WireShard>(sa: &S, sb: &S, protocol: &str) -> (S, S) {
    let mut decoded = Vec::new();
    for (which, s) in [("a", sa), ("b", sb)] {
        let bytes = s.encode_shard();
        assert_eq!(
            bytes.len(),
            s.shard_encoded_len(),
            "{protocol}: shard_encoded_len lied for shard {which}"
        );
        let d = S::decode_shard(&bytes)
            .unwrap_or_else(|e| panic!("{protocol}: shard {which} failed to decode: {e}"));
        assert_eq!(
            d.encode_shard(),
            bytes,
            "{protocol}: re-encoding shard {which} changed the bytes"
        );
        // Corrupting the frame must not decode silently.
        assert!(
            S::decode_shard(&bytes[..bytes.len() - 1]).is_err(),
            "{protocol}: truncated snapshot decoded"
        );
        let mut trailing = bytes.clone();
        trailing.push(0x00);
        assert!(
            S::decode_shard(&trailing).is_err(),
            "{protocol}: snapshot with trailing bytes decoded"
        );
        decoded.push(d);
    }
    let db = decoded.pop().expect("two shards");
    let da = decoded.pop().expect("two shards");
    (da, db)
}

/// Heavy-hitter side: `finish` over merged decoded shards must equal
/// `finish` over merged never-encoded shards, bit-for-bit.
fn conform_hh<P, F>(make: F, input: &[u64], protocol: &str)
where
    P: HeavyHitterProtocol,
    F: Fn() -> P,
{
    let server = make();
    let reports = server.respond_batch(0, input, 0xC0FE);
    let cut = input.len() / 3 + 1;
    let two_shards = || {
        let (a, b) = reports.split_at(cut);
        let mut sa = server.new_shard();
        server.absorb(&mut sa, 0, a);
        let mut sb = server.new_shard();
        server.absorb(&mut sb, cut as u64, b);
        (sa, sb)
    };
    let reference = {
        let (sa, sb) = two_shards();
        let mut s = make();
        let merged = s.merge(sa, sb);
        s.finish_shard(merged);
        s.finish()
    };
    assert!(
        !reference.is_empty(),
        "{protocol}: reference found nothing — test is vacuous"
    );
    let (sa, sb) = two_shards();
    let (da, db) = round_trip(&sa, &sb, protocol);
    // Decoded shards merge among themselves…
    let via_decoded = {
        let mut s = make();
        let merged = s.merge(da, db);
        s.finish_shard(merged);
        s.finish()
    };
    assert_eq!(
        via_decoded, reference,
        "{protocol}: decoded shards diverged from never-encoded shards"
    );
    // …and with live (never-encoded) shards, in either position.
    let (da, _) = round_trip(&sa, &sb, protocol);
    let via_mixed = {
        let mut s = make();
        let merged = s.merge(sb, da);
        s.finish_shard(merged);
        s.finish()
    };
    assert_eq!(
        via_mixed, reference,
        "{protocol}: decoded/live mixed merge diverged"
    );
}

/// Oracle side: estimates over merged decoded shards must equal
/// estimates over merged never-encoded shards, bit-for-bit.
fn conform_oracle<O, F>(make: F, input: &[u64], queries: &[u64], oracle_name: &str)
where
    O: FrequencyOracle,
    F: Fn() -> O,
{
    let oracle = make();
    let reports = oracle.respond_batch(0, input, 0x0C0FE);
    let cut = input.len() / 3 + 1;
    let two_shards = || {
        let (a, b) = reports.split_at(cut);
        let mut sa = oracle.new_shard();
        oracle.absorb(&mut sa, 0, a);
        let mut sb = oracle.new_shard();
        oracle.absorb(&mut sb, cut as u64, b);
        (sa, sb)
    };
    let answers = |shard: O::Shard| {
        let mut o = make();
        o.finish_shard(shard);
        o.finalize();
        queries.iter().map(|&q| o.estimate(q)).collect::<Vec<f64>>()
    };
    let reference = {
        let (sa, sb) = two_shards();
        answers(oracle.merge(sa, sb))
    };
    let (sa, sb) = two_shards();
    let (da, db) = round_trip(&sa, &sb, oracle_name);
    assert_eq!(
        answers(oracle.merge(da, db)),
        reference,
        "{oracle_name}: decoded shards diverged from never-encoded shards"
    );
    let (_, db) = round_trip(&sa, &sb, oracle_name);
    assert_eq!(
        answers(oracle.merge(db, sa)),
        reference,
        "{oracle_name}: decoded/live mixed merge diverged"
    );
}

#[test]
fn expander_sketch_shards_conform() {
    // Sized like the equivalence tests: at n = 2^15, eps = 4 a
    // 0.45-mass heavy element clears the keep threshold with margin.
    let n = 1u64 << 15;
    let params = SketchParams::optimal(n, 16, 4.0, 0.1);
    conform_hh(
        || ExpanderSketch::new(params.clone(), 31),
        &Workload::planted(1 << 16, vec![(0xBEE, 0.45)]).generate(n as usize, 32),
        "expander_sketch",
    );
}

#[test]
fn bitstogram_shards_conform() {
    let n = 1u64 << 15;
    let mut params = BitstogramParams::optimal(n, 16, 4.0, 0.5);
    params.repetitions = 1; // high-eps single-repetition profile, as in its unit tests
    conform_hh(
        || Bitstogram::new(params.clone(), 33),
        &Workload::planted(1 << 16, vec![(0xBEE, 0.45)]).generate(n as usize, 34),
        "bitstogram",
    );
}

#[test]
fn scan_shards_conform() {
    let n = 4_000u64;
    let params = ScanParams::new(n, 512, 4.0, 0.1);
    conform_hh(
        || ScanHeavyHitters::new(params.clone(), 35),
        &inputs(n as usize, 512, 36),
        "scan",
    );
}

#[test]
fn bassily_smith_hh_shards_conform() {
    let n = 4_000u64;
    let params = BsHhParams::optimal(n, 1 << 10, 4.0, 0.2);
    conform_hh(
        || BassilySmithHeavyHitters::new(params.clone(), 37),
        &inputs(n as usize, 1 << 10, 38),
        "bassily_smith_hh",
    );
}

#[test]
fn hashtogram_oracle_shards_conform() {
    let n = 4_000u64;
    for (name, params) in [
        (
            "hashtogram_hashed",
            HashtogramParams::hashed(n, 1 << 30, 1.0, 0.05),
        ),
        ("hashtogram_direct", HashtogramParams::direct(200, 1.0, 0.1)),
    ] {
        let domain = params.domain;
        conform_oracle(
            || Hashtogram::new(params.clone(), 39),
            &inputs(n as usize, domain, 40),
            &[domain / 3, 1, domain - 1],
            name,
        );
    }
}

#[test]
fn bassily_smith_oracle_shards_conform() {
    let n = 4_000u64;
    conform_oracle(
        || BassilySmithOracle::new(1 << 20, 1.0, n, 41),
        &inputs(n as usize, 1 << 20, 42),
        &[(1 << 20) / 3, 5],
        "bassily_smith_oracle",
    );
}

#[test]
fn krr_oracle_shards_conform() {
    let n = 4_000u64;
    conform_oracle(
        || KrrOracle::new(24, 1.0),
        &inputs(n as usize, 24, 43),
        &[8u64, 3],
        "krr",
    );
}

#[test]
fn rappor_shards_conform() {
    let n = 1_000u64;
    conform_oracle(
        || Rappor::new(100, 1.0),
        &inputs(n as usize, 100, 44),
        &[33u64, 7],
        "rappor",
    );
}

#[test]
fn malformed_snapshots_are_rejected() {
    // Structural corruption beyond truncation/trailing: composite inner
    // frames and non-canonical varints.
    assert!(HashtogramShard::decode_shard(&[]).is_err());
    // users = 0, then a group-count run claiming more elements than
    // remain.
    assert!(HashtogramShard::decode_shard(&[0, 5, 1]).is_err());
    // Zero-padded varint in the users field.
    assert!(HashtogramShard::decode_shard(&[0x80, 0x00, 0, 0]).is_err());
    // Tallies without groups: 0 users, 0 group counts, 3 tallies — the
    // shape no encoder produces; absorbing it would panic downstream.
    assert!(HashtogramShard::decode_shard(&[0, 0, 3, 2, 4, 6]).is_err());
    // The mirror: 2 groups but an empty tally run (0 divides anything).
    assert!(HashtogramShard::decode_shard(&[0, 2, 1, 1, 0]).is_err());
    // Tally rows that do not divide into the group count (2 groups,
    // 3 tallies).
    assert!(HashtogramShard::decode_shard(&[0, 2, 1, 1, 3, 2, 4, 6]).is_err());
    assert!(SketchShard::decode_shard(&[]).is_err());
    // users = 0, outer_len = 200 with nothing behind it.
    assert!(SketchShard::decode_shard(&[0, 200]).is_err());
}

mod snapshot_replay {
    //! Property: recovery from a snapshot plus spool replay, at a random
    //! crash point under a random stream shape, is indistinguishable
    //! from never crashing.

    use ldp_heavy_hitters::core::baselines::{ScanHeavyHitters, ScanParams};
    use ldp_heavy_hitters::prelude::*;
    use ldp_heavy_hitters::sim::{HhStream, StreamEngine, StreamPlan};
    use proptest::prelude::*;

    const N: usize = 6_000;
    const COLLECTORS: usize = 3;

    fn run_stream(
        seed: u64,
        plan: &StreamPlan,
        crash: Option<(u64, usize, u64)>,
    ) -> Vec<(u64, f64)> {
        let input = Workload::planted(256, vec![(9, 0.35)]).generate(N, seed ^ 0x11);
        let server = ScanHeavyHitters::new(ScanParams::new(N as u64, 256, 4.0, 0.1), seed ^ 0x22);
        let (shard, stats) = {
            let mut engine = StreamEngine::new(HhStream(&server), plan.clone(), seed ^ 0x33);
            let mut off = 0;
            while off < N {
                let hi = (off + plan.epoch_size).min(N);
                engine.ingest_epoch(&input[off..hi]);
                off = hi;
                if let Some((kill_epoch, node, recover_epoch)) = crash {
                    if engine.epoch() == kill_epoch && engine.is_alive(node) {
                        engine.kill_collector(node);
                    }
                    if engine.epoch() == recover_epoch && !engine.is_alive(node) {
                        engine.recover_collector(node);
                    }
                }
            }
            engine.into_live_shard()
        };
        if crash.is_some() {
            assert_eq!(stats.recoveries, 1, "crash was never recovered");
        }
        let mut server = server;
        server.finish_shard(shard);
        server.finish()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn snapshot_plus_replay_equals_uninterrupted(
            seed in 0u64..1000,
            epoch_size in 500usize..2500,
            checkpoint_every in 0usize..3,
            kill_epoch in 1u64..4,
            node in 0usize..COLLECTORS,
            recover_gap in 0u64..3,
        ) {
            let plan = StreamPlan {
                epoch_size,
                checkpoint_every,
                dist: DistPlan {
                    collectors: COLLECTORS,
                    chunk_size: 700,
                    threads: 2,
                    merge: MergeOrder::Tree,
                },
            };
            let uninterrupted = run_stream(seed, &plan, None);
            let crashed = run_stream(seed, &plan, Some((kill_epoch, node, kill_epoch + 1 + recover_gap)));
            prop_assert_eq!(crashed, uninterrupted);
        }
    }
}
