//! Batch-vs-serial equivalence: for every heavy-hitter protocol (and the
//! Hashtogram frequency oracle), `run_heavy_hitter_batched` must produce
//! `finish()` output bit-for-bit identical to the serial `run_heavy_hitter`
//! for the same seed — across 1, 2 and 8 chunks, and across thread counts.
//!
//! This is the acceptance gate of the batched pipeline: chunking and
//! parallelism are pure schedule changes, never result changes. It holds
//! because (a) user `i`'s client coins are a pure function of
//! `(seed, i)` in both drivers, and (b) servers ingest reports through
//! order-exact integer tallies, so shard merges cannot reassociate
//! floating-point sums.

use ldp_heavy_hitters::core::baselines::{
    BassilySmithHeavyHitters, Bitstogram, BitstogramParams, BsHhParams, ScanHeavyHitters,
    ScanParams,
};
use ldp_heavy_hitters::prelude::*;
use ldp_heavy_hitters::sim::{run_heavy_hitter_batched, run_oracle_batched, BatchPlan};

fn assert_equivalent<P, F>(
    make: F,
    input: &[u64],
    seed: u64,
    chunk_sizes: &[usize],
    threads: &[usize],
    protocol: &str,
) where
    P: HeavyHitterProtocol + Sync,
    P::Report: Send + Sync,
    F: Fn() -> P,
{
    let serial = {
        let mut server = make();
        run_heavy_hitter(&mut server, input, seed).estimates
    };
    assert!(
        !serial.is_empty(),
        "{protocol}: serial run found nothing — test is vacuous"
    );
    for &chunk_size in chunk_sizes {
        for &t in threads {
            let mut server = make();
            let plan = BatchPlan {
                chunk_size,
                threads: t,
            };
            let batched = run_heavy_hitter_batched(&mut server, input, seed, &plan).estimates;
            assert_eq!(
                batched, serial,
                "{protocol}: batched output diverged at chunk_size {chunk_size}, threads {t}"
            );
        }
    }
}

#[test]
fn expander_sketch_batched_equals_serial() {
    // Sized against the protocol's own threshold: at n = 2^15, eps = 4
    // the keep threshold sits at ~0.24 n, so a 0.45-mass heavy element
    // clears it with margin and the comparison is non-vacuous (checked by
    // the assert below; the run is fully deterministic).
    let n = 1usize << 15;
    let input = Workload::planted(1 << 16, vec![(0xBEE, 0.45)]).generate(n, 71);
    let params = SketchParams::optimal(n as u64, 16, 4.0, 0.1);
    // 1, 2 and 8 chunks.
    assert_equivalent(
        || ExpanderSketch::new(params.clone(), 101),
        &input,
        102,
        &[n, n / 2, n / 8],
        &[2],
        "expander_sketch",
    );
}

#[test]
fn bitstogram_batched_equals_serial() {
    let n = 1usize << 15;
    let input = Workload::planted(1 << 16, vec![(0xBEE, 0.45)]).generate(n, 72);
    let mut params = BitstogramParams::optimal(n as u64, 16, 4.0, 0.5);
    params.repetitions = 1; // high-eps single-repetition profile, as in its unit tests
    assert_equivalent(
        || Bitstogram::new(params.clone(), 103),
        &input,
        104,
        &[n, n / 2, n / 8],
        &[2],
        "bitstogram",
    );
}

#[test]
fn scan_batched_equals_serial() {
    let n = 1usize << 14;
    let input = Workload::planted(512, vec![(9, 0.3), (100, 0.2)]).generate(n, 73);
    let params = ScanParams::new(n as u64, 512, 4.0, 0.1);
    // 1, 2 and 8 chunks plus a ragged chunking and thread sweeps (cheap
    // protocol, so exercise the wider grid here).
    assert_equivalent(
        || ScanHeavyHitters::new(params.clone(), 105),
        &input,
        106,
        &[n, n / 2, n / 8, 3000],
        &[1, 2, 8],
        "scan",
    );
}

#[test]
fn bassily_smith_batched_equals_serial() {
    // Small instance: this baseline's finish() is the Θ(n·|X|) domain
    // scan the paper indicts, so the equivalence grid stays modest.
    let n = 1usize << 13;
    let input = Workload::planted(1 << 10, vec![(0x321, 0.5)]).generate(n, 74);
    let params = BsHhParams::optimal(n as u64, 1 << 10, 4.0, 0.2);
    assert_equivalent(
        || BassilySmithHeavyHitters::new(params.clone(), 107),
        &input,
        108,
        &[n, n / 2, n / 8, 3000],
        &[2],
        "bassily_smith",
    );
}

#[test]
fn hashtogram_oracle_batched_equals_serial() {
    let n = 1usize << 14;
    let input = Workload::planted(1 << 16, vec![(0xBEE, 0.25), (0x123, 0.15)]).generate(n, 75);
    let queries = [0xBEEu64, 0x123, 7, 60_000];
    let params = || HashtogramParams::hashed(n as u64, 1 << 16, 1.0, 0.05);
    let serial = {
        let mut o = Hashtogram::new(params(), 109);
        run_oracle(&mut o, &input, &queries, 110).answers
    };
    assert!(serial[0] > 0.1 * n as f64, "vacuous: {serial:?}");
    for chunk_size in [n, n / 2, n / 8, 3000] {
        for threads in [1usize, 4] {
            let mut o = Hashtogram::new(params(), 109);
            let plan = BatchPlan {
                chunk_size,
                threads,
            };
            let batched = run_oracle_batched(&mut o, &input, &queries, 110, &plan).answers;
            assert_eq!(
                batched, serial,
                "oracle diverged at chunk_size {chunk_size}, threads {threads}"
            );
        }
    }
}

mod shard_algebra {
    //! Property tests of the shard aggregation algebra: `merge` is
    //! associative and commutative (observationally) with `new_shard()`
    //! as identity, and any shard/merge tree over any partition of the
    //! reports yields output identical to serial `collect`.

    use ldp_heavy_hitters::core::baselines::{ScanHeavyHitters, ScanParams};
    use ldp_heavy_hitters::prelude::*;
    use proptest::prelude::*;

    const N: usize = 4_000;

    fn setup(
        seed: u64,
    ) -> (
        ScanHeavyHitters,
        Vec<<ScanHeavyHitters as HeavyHitterProtocol>::Report>,
    ) {
        let params = ScanParams::new(N as u64, 256, 4.0, 0.1);
        let input = Workload::planted(256, vec![(9, 0.35)]).generate(N, seed);
        let server = ScanHeavyHitters::new(params, seed ^ 0x5A);
        let reports = server.respond_batch(0, &input, seed ^ 0xC3);
        (server, reports)
    }

    fn serial_finish(seed: u64) -> Vec<(u64, f64)> {
        let (mut server, reports) = setup(seed);
        for (i, &rep) in reports.iter().enumerate() {
            server.collect(i as u64, rep);
        }
        server.finish()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn any_shard_tree_matches_serial_collect(
            seed in 0u64..1000,
            cut_a in 1usize..1999,
            cut_b in 2000usize..3999,
            tree in 0u8..3,
        ) {
            let truth = serial_finish(seed);
            let (mut server, reports) = setup(seed);
            // Partition the population into three ragged ranges and
            // absorb each into its own shard.
            let (ra, rest) = reports.split_at(cut_a);
            let (rb, rc) = rest.split_at(cut_b - cut_a);
            let mut sa = server.new_shard();
            server.absorb(&mut sa, 0, ra);
            let mut sb = server.new_shard();
            server.absorb(&mut sb, cut_a as u64, rb);
            let mut sc = server.new_shard();
            server.absorb(&mut sc, cut_b as u64, rc);
            // Three distinct merge trees/orders.
            let merged = match tree {
                0 => server.merge(server.merge(sa, sb), sc),
                1 => server.merge(sa, server.merge(sb, sc)),
                _ => server.merge(sc, server.merge(sb, sa)),
            };
            server.finish_shard(merged);
            prop_assert_eq!(server.finish(), truth, "tree {}", tree);
        }

        #[test]
        fn new_shard_is_the_merge_identity(seed in 0u64..1000, left in 0u8..2) {
            let truth = serial_finish(seed);
            let (mut server, reports) = setup(seed);
            let mut shard = server.new_shard();
            server.absorb(&mut shard, 0, &reports);
            let merged = if left == 0 {
                server.merge(server.new_shard(), shard)
            } else {
                server.merge(shard, server.new_shard())
            };
            server.finish_shard(merged);
            prop_assert_eq!(server.finish(), truth);
        }
    }
}

#[test]
fn direct_trait_batch_calls_equal_per_user_calls() {
    // The trait-level contract, independent of the drivers: respond_batch
    // must equal per-user respond on the derived streams, and
    // collect_batch must leave observationally identical server state.
    use ldp_heavy_hitters::math::rng::client_rng;
    let n = 1usize << 13;
    let input = Workload::planted(1 << 16, vec![(0xBEE, 0.3)]).generate(n, 76);
    let params = ScanParams::new(n as u64, 1 << 10, 2.0, 0.1);
    let input: Vec<u64> = input.iter().map(|&x| x & 0x3FF).collect();
    let client_seed = 0xABCD_EF01u64;

    let server = ScanHeavyHitters::new(params.clone(), 111);
    let batch = server.respond_batch(0, &input, client_seed);
    let mut via_batch_server = ScanHeavyHitters::new(params.clone(), 111);
    via_batch_server.collect_batch(0, batch);
    let via_batch = via_batch_server.finish();

    let mut serial_server = ScanHeavyHitters::new(params, 111);
    for (i, &x) in input.iter().enumerate() {
        let mut rng = client_rng(client_seed, i as u64);
        let rep = serial_server.respond(i as u64, x, &mut rng);
        serial_server.collect(i as u64, rep);
    }
    assert_eq!(via_batch, serial_server.finish());
}
