//! Distributed-vs-serial equivalence: for every heavy-hitter protocol
//! and frequency oracle, the distributed driver — which round-trips
//! every report through its wire encoding, fans chunks out to `k`
//! simulated collector nodes, and merges the collectors' shards — must
//! produce `finish()` output bit-for-bit identical to the serial
//! reference run for the same seed, for any collector count
//! (1, 2 and 8 here), chunk size, and merge order.
//!
//! This is the acceptance gate of the encoder/aggregator split: wire
//! serialization, collector assignment and shard-merge topology are
//! pure transport/schedule choices, never result changes.

use ldp_heavy_hitters::core::baselines::{
    BassilySmithHeavyHitters, Bitstogram, BitstogramParams, BsHhParams, ScanHeavyHitters,
    ScanParams,
};
use ldp_heavy_hitters::freq::bassily_smith::BassilySmithOracle;
use ldp_heavy_hitters::freq::krr::KrrOracle;
use ldp_heavy_hitters::freq::rappor::Rappor;
use ldp_heavy_hitters::prelude::*;

const ORDERS: [MergeOrder; 3] = [
    MergeOrder::Tree,
    MergeOrder::Sequential,
    MergeOrder::ReverseSequential,
];

fn assert_distributed_equivalent<P, F>(make: F, input: &[u64], seed: u64, protocol: &str)
where
    P: HeavyHitterProtocol + Sync,
    P::Report: Send + Sync,
    F: Fn() -> P,
{
    let serial = {
        let mut server = make();
        run_heavy_hitter(&mut server, input, seed).estimates
    };
    assert!(
        !serial.is_empty(),
        "{protocol}: serial run found nothing — test is vacuous"
    );
    // Collector counts 1, 2, 8 under the default tree merge; every merge
    // order at 8 collectors; plus a ragged chunk size.
    let n = input.len();
    let mut plans: Vec<DistPlan> = [1usize, 2, 8]
        .iter()
        .map(|&k| DistPlan {
            collectors: k,
            chunk_size: n / 8,
            threads: 2,
            merge: MergeOrder::Tree,
        })
        .collect();
    for order in ORDERS {
        plans.push(DistPlan {
            collectors: 8,
            chunk_size: 3000,
            threads: 2,
            merge: order,
        });
    }
    for plan in &plans {
        let mut server = make();
        let run = run_heavy_hitter_distributed(&mut server, input, seed, plan);
        assert_eq!(
            run.estimates, serial,
            "{protocol}: distributed output diverged at {plan:?}"
        );
        assert!(
            run.wire_bytes > 0,
            "{protocol}: no bytes crossed the wire at {plan:?}"
        );
        // Every report stayed within the claimed size (byte-aligned).
        assert!(
            run.wire_bytes <= (run.n * run.report_bits.div_ceil(8)) as u64,
            "{protocol}: wire bytes {} exceed claim {} x {} bytes",
            run.wire_bytes,
            run.n,
            run.report_bits.div_ceil(8),
        );
    }
}

#[test]
fn expander_sketch_distributed_equals_serial() {
    let n = 1usize << 15;
    let input = Workload::planted(1 << 16, vec![(0xBEE, 0.45)]).generate(n, 81);
    let params = SketchParams::optimal(n as u64, 16, 4.0, 0.1);
    assert_distributed_equivalent(
        || ExpanderSketch::new(params.clone(), 201),
        &input,
        202,
        "expander_sketch",
    );
}

#[test]
fn bitstogram_distributed_equals_serial() {
    let n = 1usize << 15;
    let input = Workload::planted(1 << 16, vec![(0xBEE, 0.45)]).generate(n, 82);
    let mut params = BitstogramParams::optimal(n as u64, 16, 4.0, 0.5);
    params.repetitions = 1; // high-eps single-repetition profile, as in its unit tests
    assert_distributed_equivalent(
        || Bitstogram::new(params.clone(), 203),
        &input,
        204,
        "bitstogram",
    );
}

#[test]
fn scan_distributed_equals_serial() {
    let n = 1usize << 14;
    let input = Workload::planted(512, vec![(9, 0.3), (100, 0.2)]).generate(n, 83);
    let params = ScanParams::new(n as u64, 512, 4.0, 0.1);
    assert_distributed_equivalent(
        || ScanHeavyHitters::new(params.clone(), 205),
        &input,
        206,
        "scan",
    );
}

#[test]
fn bassily_smith_distributed_equals_serial() {
    let n = 1usize << 13;
    let input = Workload::planted(1 << 10, vec![(0x321, 0.5)]).generate(n, 84);
    let params = BsHhParams::optimal(n as u64, 1 << 10, 4.0, 0.2);
    assert_distributed_equivalent(
        || BassilySmithHeavyHitters::new(params.clone(), 207),
        &input,
        208,
        "bassily_smith",
    );
}

/// Oracle-side equivalence, generic over the oracle constructor.
fn assert_oracle_distributed_equivalent<O, F>(
    make: F,
    input: &[u64],
    queries: &[u64],
    seed: u64,
    oracle_name: &str,
) where
    O: FrequencyOracle + Sync,
    O::Report: Send + Sync,
    F: Fn() -> O,
{
    let serial = {
        let mut oracle = make();
        run_oracle(&mut oracle, input, queries, seed).answers
    };
    for k in [1usize, 2, 8] {
        for order in ORDERS {
            let plan = DistPlan {
                collectors: k,
                chunk_size: input.len() / 4 + 1,
                threads: 2,
                merge: order,
            };
            let mut oracle = make();
            let run = run_oracle_distributed(&mut oracle, input, queries, seed, &plan);
            assert_eq!(
                run.answers, serial,
                "{oracle_name}: answers diverged at k = {k}, {order:?}"
            );
        }
    }
}

#[test]
fn hashtogram_oracle_distributed_equals_serial() {
    let n = 1usize << 14;
    let input = Workload::planted(1 << 16, vec![(0xBEE, 0.25)]).generate(n, 85);
    assert_oracle_distributed_equivalent(
        || Hashtogram::new(HashtogramParams::hashed(n as u64, 1 << 16, 1.0, 0.05), 209),
        &input,
        &[0xBEEu64, 7, 60_000],
        210,
        "hashtogram",
    );
}

#[test]
fn bassily_smith_oracle_distributed_equals_serial() {
    let n = 1usize << 13;
    let input = Workload::planted(1 << 16, vec![(0x44, 0.3)]).generate(n, 86);
    assert_oracle_distributed_equivalent(
        || BassilySmithOracle::new(1 << 16, 1.0, n as u64 / 4, 211),
        &input,
        &[0x44u64, 5],
        212,
        "bassily_smith_oracle",
    );
}

#[test]
fn krr_oracle_distributed_equals_serial() {
    let n = 1usize << 13;
    let input: Vec<u64> = Workload::planted(24, vec![(3, 0.4)]).generate(n, 87);
    assert_oracle_distributed_equivalent(
        || KrrOracle::new(24, 1.0),
        &input,
        &[3u64, 9],
        213,
        "krr",
    );
}

#[test]
fn rappor_distributed_equals_serial() {
    let n = 1usize << 11;
    let input: Vec<u64> = Workload::planted(100, vec![(42, 0.4)]).generate(n, 88);
    assert_oracle_distributed_equivalent(
        || Rappor::new(100, 1.0),
        &input,
        &[42u64, 17],
        214,
        "rappor",
    );
}
