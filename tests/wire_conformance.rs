//! Wire-format conformance: for every protocol and oracle, reports
//! survive a serialization round trip bit-for-bit, the advertised
//! `encoded_len` is exact, and the measured wire size never exceeds the
//! claimed `report_bits()` — up to byte alignment, i.e.
//! `encoded_len <= report_bits().div_ceil(8)` (a byte transport cannot
//! express a 7-bit message in less than one byte, so the Θ(log)-bit
//! claim rounds up to the next whole byte; composite reports already
//! count their framing in `report_bits`).
//!
//! This closes the gap the monolithic design left open: `report_bits()`
//! used to be an unchecked theoretical number, and no report ever
//! crossed a byte boundary.

use ldp_heavy_hitters::core::baselines::{
    BassilySmithHeavyHitters, Bitstogram, BitstogramParams, BsHhParams, ScanHeavyHitters,
    ScanParams,
};
use ldp_heavy_hitters::freq::bassily_smith::BassilySmithOracle;
use ldp_heavy_hitters::freq::krr::KrrOracle;
use ldp_heavy_hitters::freq::rappor::Rappor;
use ldp_heavy_hitters::prelude::*;

/// Round-trip + size conformance over one batch of reports.
fn conform<R>(reports: &[R], report_bits: usize, protocol: &str)
where
    R: WireReport + PartialEq + std::fmt::Debug,
{
    assert!(!reports.is_empty(), "{protocol}: no reports to check");
    let byte_budget = report_bits.div_ceil(8);
    for (i, report) in reports.iter().enumerate() {
        let bytes = report.encode();
        assert_eq!(
            bytes.len(),
            report.encoded_len(),
            "{protocol}: encoded_len lied for report {i}"
        );
        assert!(
            bytes.len() <= byte_budget,
            "{protocol}: report {i} took {} bytes, claim allows {byte_budget} \
             (report_bits = {report_bits})",
            bytes.len(),
        );
        let decoded = R::decode(&bytes).unwrap_or_else(|e| {
            panic!("{protocol}: decode failed for report {i}: {e}");
        });
        assert_eq!(&decoded, report, "{protocol}: round trip diverged at {i}");
    }
}

fn inputs(n: usize, domain: u64, seed: u64) -> Vec<u64> {
    Workload::planted(domain, vec![(domain / 3, 0.3)]).generate(n, seed)
}

#[test]
fn expander_sketch_reports_conform() {
    let n = 2_000u64;
    let params = SketchParams::optimal(n, 16, 2.0, 0.1);
    let server = ExpanderSketch::new(params, 1);
    let xs = inputs(n as usize, 1 << 16, 2);
    conform(
        &server.respond_batch(0, &xs, 3),
        server.report_bits(),
        "expander_sketch",
    );
}

#[test]
fn bitstogram_reports_conform() {
    let n = 2_000u64;
    let params = BitstogramParams::optimal(n, 16, 2.0, 0.2);
    let server = Bitstogram::new(params, 4);
    let xs = inputs(n as usize, 1 << 16, 5);
    conform(
        &server.respond_batch(0, &xs, 6),
        server.report_bits(),
        "bitstogram",
    );
}

#[test]
fn scan_reports_conform() {
    let n = 2_000u64;
    let server = ScanHeavyHitters::new(ScanParams::new(n, 512, 2.0, 0.1), 7);
    let xs = inputs(n as usize, 512, 8);
    conform(
        &server.respond_batch(0, &xs, 9),
        server.report_bits(),
        "scan",
    );
}

#[test]
fn bassily_smith_hh_reports_conform() {
    let n = 2_000u64;
    let server = BassilySmithHeavyHitters::new(BsHhParams::optimal(n, 1 << 10, 2.0, 0.2), 10);
    let xs = inputs(n as usize, 1 << 10, 11);
    conform(
        &server.respond_batch(0, &xs, 12),
        server.report_bits(),
        "bassily_smith_hh",
    );
}

#[test]
fn hashtogram_oracle_reports_conform() {
    let n = 2_000u64;
    for (name, params) in [
        (
            "hashtogram_hashed",
            HashtogramParams::hashed(n, 1 << 30, 1.0, 0.05),
        ),
        ("hashtogram_direct", HashtogramParams::direct(200, 1.0, 0.1)),
    ] {
        let domain = params.domain;
        let oracle = Hashtogram::new(params, 13);
        let xs = inputs(n as usize, domain, 14);
        conform(
            &oracle.respond_batch(0, &xs, 15),
            oracle.report_bits(),
            name,
        );
    }
}

#[test]
fn bassily_smith_oracle_reports_conform() {
    let n = 2_000u64;
    let oracle = BassilySmithOracle::new(1 << 20, 1.0, n, 16);
    let xs = inputs(n as usize, 1 << 20, 17);
    conform(
        &oracle.respond_batch(0, &xs, 18),
        oracle.report_bits(),
        "bassily_smith_oracle",
    );
}

#[test]
fn krr_oracle_reports_conform() {
    let n = 2_000u64;
    let oracle = KrrOracle::new(24, 1.0);
    let xs = inputs(n as usize, 24, 19);
    conform(
        &oracle.respond_batch(0, &xs, 20),
        oracle.report_bits(),
        "krr",
    );
}

#[test]
fn rappor_reports_conform() {
    let n = 500u64;
    // A domain that is not a multiple of 8 exercises the byte rounding.
    let oracle = Rappor::new(100, 1.0);
    let xs = inputs(n as usize, 100, 21);
    conform(
        &oracle.respond_batch(0, &xs, 22),
        oracle.report_bits(),
        "rappor",
    );
}

#[test]
fn malformed_frames_are_rejected() {
    use ldp_heavy_hitters::core::SketchReport;
    use ldp_heavy_hitters::freq::HashtogramReport;

    // Empty and zero-padded scalar frames.
    assert!(HashtogramReport::decode(&[]).is_err());
    assert!(HashtogramReport::decode(&[7, 0]).is_err());
    // Composite frames: missing header, truncated inner component.
    assert!(SketchReport::decode(&[]).is_err());
    assert!(SketchReport::decode(&[5, 1, 2]).is_err());
}
