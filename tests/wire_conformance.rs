//! Wire-format conformance: for every protocol and oracle, reports
//! survive a serialization round trip bit-for-bit, the advertised
//! `encoded_len` is exact, and the measured wire size never exceeds the
//! claimed `report_bits()` — up to byte alignment, i.e.
//! `encoded_len <= report_bits().div_ceil(8)` (a byte transport cannot
//! express a 7-bit message in less than one byte, so the Θ(log)-bit
//! claim rounds up to the next whole byte; composite reports already
//! count their framing in `report_bits`).
//!
//! This closes the gap the monolithic design left open: `report_bits()`
//! used to be an unchecked theoretical number, and no report ever
//! crossed a byte boundary.

use ldp_heavy_hitters::core::baselines::{
    BassilySmithHeavyHitters, Bitstogram, BitstogramParams, BsHhParams, ScanHeavyHitters,
    ScanParams,
};
use ldp_heavy_hitters::freq::bassily_smith::BassilySmithOracle;
use ldp_heavy_hitters::freq::krr::KrrOracle;
use ldp_heavy_hitters::freq::rappor::Rappor;
use ldp_heavy_hitters::prelude::*;

/// Round-trip + size conformance over one batch of reports.
fn conform<R>(reports: &[R], report_bits: usize, protocol: &str)
where
    R: WireReport + PartialEq + std::fmt::Debug,
{
    assert!(!reports.is_empty(), "{protocol}: no reports to check");
    let byte_budget = report_bits.div_ceil(8);
    for (i, report) in reports.iter().enumerate() {
        let bytes = report.encode();
        assert_eq!(
            bytes.len(),
            report.encoded_len(),
            "{protocol}: encoded_len lied for report {i}"
        );
        assert!(
            bytes.len() <= byte_budget,
            "{protocol}: report {i} took {} bytes, claim allows {byte_budget} \
             (report_bits = {report_bits})",
            bytes.len(),
        );
        let decoded = R::decode(&bytes).unwrap_or_else(|e| {
            panic!("{protocol}: decode failed for report {i}: {e}");
        });
        assert_eq!(&decoded, report, "{protocol}: round trip diverged at {i}");
    }
}

fn inputs(n: usize, domain: u64, seed: u64) -> Vec<u64> {
    Workload::planted(domain, vec![(domain / 3, 0.3)]).generate(n, seed)
}

#[test]
fn expander_sketch_reports_conform() {
    let n = 2_000u64;
    let params = SketchParams::optimal(n, 16, 2.0, 0.1);
    let server = ExpanderSketch::new(params, 1);
    let xs = inputs(n as usize, 1 << 16, 2);
    conform(
        &server.respond_batch(0, &xs, 3),
        server.report_bits(),
        "expander_sketch",
    );
}

#[test]
fn bitstogram_reports_conform() {
    let n = 2_000u64;
    let params = BitstogramParams::optimal(n, 16, 2.0, 0.2);
    let server = Bitstogram::new(params, 4);
    let xs = inputs(n as usize, 1 << 16, 5);
    conform(
        &server.respond_batch(0, &xs, 6),
        server.report_bits(),
        "bitstogram",
    );
}

#[test]
fn scan_reports_conform() {
    let n = 2_000u64;
    let server = ScanHeavyHitters::new(ScanParams::new(n, 512, 2.0, 0.1), 7);
    let xs = inputs(n as usize, 512, 8);
    conform(
        &server.respond_batch(0, &xs, 9),
        server.report_bits(),
        "scan",
    );
}

#[test]
fn bassily_smith_hh_reports_conform() {
    let n = 2_000u64;
    let server = BassilySmithHeavyHitters::new(BsHhParams::optimal(n, 1 << 10, 2.0, 0.2), 10);
    let xs = inputs(n as usize, 1 << 10, 11);
    conform(
        &server.respond_batch(0, &xs, 12),
        server.report_bits(),
        "bassily_smith_hh",
    );
}

#[test]
fn hashtogram_oracle_reports_conform() {
    let n = 2_000u64;
    for (name, params) in [
        (
            "hashtogram_hashed",
            HashtogramParams::hashed(n, 1 << 30, 1.0, 0.05),
        ),
        ("hashtogram_direct", HashtogramParams::direct(200, 1.0, 0.1)),
    ] {
        let domain = params.domain;
        let oracle = Hashtogram::new(params, 13);
        let xs = inputs(n as usize, domain, 14);
        conform(
            &oracle.respond_batch(0, &xs, 15),
            oracle.report_bits(),
            name,
        );
    }
}

#[test]
fn bassily_smith_oracle_reports_conform() {
    let n = 2_000u64;
    let oracle = BassilySmithOracle::new(1 << 20, 1.0, n, 16);
    let xs = inputs(n as usize, 1 << 20, 17);
    conform(
        &oracle.respond_batch(0, &xs, 18),
        oracle.report_bits(),
        "bassily_smith_oracle",
    );
}

#[test]
fn krr_oracle_reports_conform() {
    let n = 2_000u64;
    let oracle = KrrOracle::new(24, 1.0);
    let xs = inputs(n as usize, 24, 19);
    conform(
        &oracle.respond_batch(0, &xs, 20),
        oracle.report_bits(),
        "krr",
    );
}

#[test]
fn rappor_reports_conform() {
    let n = 500u64;
    // A domain that is not a multiple of 8 exercises the byte rounding.
    let oracle = Rappor::new(100, 1.0);
    let xs = inputs(n as usize, 100, 21);
    conform(
        &oracle.respond_batch(0, &xs, 22),
        oracle.report_bits(),
        "rappor",
    );
}

#[test]
fn malformed_frames_are_rejected() {
    use ldp_heavy_hitters::core::SketchReport;
    use ldp_heavy_hitters::freq::HashtogramReport;

    // Empty and zero-padded scalar frames.
    assert!(HashtogramReport::decode(&[]).is_err());
    assert!(HashtogramReport::decode(&[7, 0]).is_err());
    // Composite frames: missing header, truncated inner component.
    assert!(SketchReport::decode(&[]).is_err());
    assert!(SketchReport::decode(&[5, 1, 2]).is_err());
}

#[test]
fn malformed_chunk_framing_is_rejected() {
    // Chunk-level framing (`WireFrames`) is validated up front: trailing
    // garbage after the last frame, frame lengths overrunning the
    // buffer, and zero-length frames must all fail at chunk-decode time
    // rather than being silently ignored by the absorb loop.
    assert_eq!(
        WireFrames::new(&[1, 2, 3], &[1, 1]).unwrap_err(),
        WireError::Trailing
    );
    assert_eq!(
        WireFrames::new(&[1, 2], &[1, 3]).unwrap_err(),
        WireError::Truncated
    );
    assert_eq!(
        WireFrames::new(&[1, 2], &[1, 0, 1]).unwrap_err(),
        WireError::Invalid("zero-length frame")
    );
}

#[test]
fn corrupt_wire_chunks_surface_frame_and_offset() {
    // A chunk whose frames decode but violate the protocol's domain
    // must come back as a `FrameError` naming the frame and its byte
    // offset — the provenance the streaming engine's diagnostics build
    // on — and never panic.
    let oracle = KrrOracle::new(8, 1.0);
    // Frame 0 is a valid report (3); frame 1 encodes 200, outside [8].
    let bytes = [3u8, 200];
    let lens = [1u32, 1];
    let frames = WireFrames::new(&bytes, &lens).expect("well-framed");
    let mut shard = oracle.new_shard();
    let err = oracle
        .absorb_wire(&mut shard, 0, &frames)
        .expect_err("out-of-domain report must be rejected");
    assert_eq!(err.frame, 1);
    assert_eq!(err.byte_offset, 1);
    assert_eq!(
        err.error,
        WireError::Invalid("GRR report outside the domain")
    );
}

mod zero_copy_ingest {
    //! Property: the fused client path (`respond_encode_batch`) writes
    //! byte-identical wire chunks to respond-then-encode, and the
    //! zero-copy server path (`absorb_wire`) leaves shards bit-for-bit
    //! equal to decode-then-absorb — for every protocol and oracle, over
    //! random inputs, chunk boundaries, chunk processing orders, and
    //! shard assignments.

    use super::inputs;
    use ldp_heavy_hitters::core::baselines::{
        BassilySmithHeavyHitters, Bitstogram, BitstogramParams, BsHhParams, ScanHeavyHitters,
        ScanParams,
    };
    use ldp_heavy_hitters::freq::bassily_smith::BassilySmithOracle;
    use ldp_heavy_hitters::freq::krr::KrrOracle;
    use ldp_heavy_hitters::freq::rappor::Rappor;
    use ldp_heavy_hitters::freq::wire::encode_reports;
    use ldp_heavy_hitters::prelude::*;
    use ldp_heavy_hitters::sim::{HhStream, MaterializingIngest, OracleStream};
    use proptest::prelude::*;
    use rand::Rng;

    /// The shared schedule of one property case: random chunk
    /// boundaries, a shuffled chunk processing order, and a random
    /// two-shard split, applied identically to the fused and the
    /// materializing pipeline. Shards are compared bit-for-bit through
    /// their snapshot encoding.
    fn assert_fused_matches_materialized<I: MaterializingIngest>(
        ingest: &I,
        xs: &[u64],
        chunk_size: usize,
        client_seed: u64,
        order_seed: u64,
        protocol: &str,
    ) {
        let num_chunks = xs.len().div_ceil(chunk_size);
        let mut order: Vec<usize> = (0..num_chunks).collect();
        let mut rng = seeded_rng(order_seed);
        for i in (1..order.len()).rev() {
            let j = (rng.gen_range(0..(i + 1) as u64)) as usize;
            order.swap(i, j);
        }

        let mut wire_shards = [ingest.new_shard(), ingest.new_shard()];
        let mut ref_shards = [ingest.new_shard(), ingest.new_shard()];
        for &c in &order {
            let lo = c * chunk_size;
            let hi = (lo + chunk_size).min(xs.len());
            let start = lo as u64;
            let slice = &xs[lo..hi];

            // Fused client path vs respond-then-encode: byte-identical.
            let mut bytes = Vec::new();
            let lens = ingest.respond_encode_batch(start, slice, client_seed, &mut bytes);
            let reports = ingest.respond_batch(start, slice, client_seed);
            let mut ref_bytes = Vec::new();
            let ref_lens = encode_reports(&reports, &mut ref_bytes);
            assert_eq!(bytes, ref_bytes, "{protocol}: fused encoding diverged");
            assert_eq!(lens, ref_lens, "{protocol}: fused framing diverged");

            // Zero-copy absorb vs decode-then-absorb, same target shard.
            let frames = WireFrames::new(&bytes, &lens)
                .unwrap_or_else(|e| panic!("{protocol}: chunk {c} misframed: {e}"));
            let which = rng.gen_range(0..2u64) as usize;
            ingest
                .absorb_wire(&mut wire_shards[which], start, &frames)
                .unwrap_or_else(|e| panic!("{protocol}: chunk {c} failed to absorb: {e}"));
            let decoded: Vec<I::Report> = frames
                .iter()
                .map(|f| I::Report::decode(f).expect("frame decodes"))
                .collect();
            ingest.absorb(&mut ref_shards[which], start, &decoded);
        }
        let [wa, wb] = wire_shards;
        let [ra, rb] = ref_shards;
        let wire = ingest.merge(wa, wb);
        let reference = ingest.merge(ra, rb);
        assert_eq!(
            ingest.encode_shard(&wire),
            ingest.encode_shard(&reference),
            "{protocol}: absorb_wire shard diverged from decode+absorb"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn all_protocols_absorb_wire_equals_decode_absorb(
            n in 100usize..350,
            chunk_size in 1usize..160,
            data_seed in 0u64..1_000,
            client_seed in 0u64..1_000,
            order_seed in 0u64..1_000,
        ) {
            // Heavy-hitter protocols.
            let p = SketchParams::optimal(n as u64, 12, 2.0, 0.2);
            let server = ExpanderSketch::new(p, 71);
            assert_fused_matches_materialized(
                &HhStream(&server), &inputs(n, 1 << 12, data_seed),
                chunk_size, client_seed, order_seed, "expander_sketch",
            );

            let p = BitstogramParams::optimal(n as u64, 12, 2.0, 0.3);
            let server = Bitstogram::new(p, 72);
            assert_fused_matches_materialized(
                &HhStream(&server), &inputs(n, 1 << 12, data_seed ^ 1),
                chunk_size, client_seed, order_seed, "bitstogram",
            );

            let server = ScanHeavyHitters::new(ScanParams::new(n as u64, 256, 2.0, 0.1), 73);
            assert_fused_matches_materialized(
                &HhStream(&server), &inputs(n, 256, data_seed ^ 2),
                chunk_size, client_seed, order_seed, "scan",
            );

            let server = BassilySmithHeavyHitters::new(
                BsHhParams::optimal(n as u64, 1 << 10, 2.0, 0.2), 74,
            );
            assert_fused_matches_materialized(
                &HhStream(&server), &inputs(n, 1 << 10, data_seed ^ 3),
                chunk_size, client_seed, order_seed, "bassily_smith_hh",
            );

            // Frequency oracles.
            let oracle = Hashtogram::new(HashtogramParams::hashed(n as u64, 1 << 20, 1.0, 0.1), 75);
            assert_fused_matches_materialized(
                &OracleStream(&oracle), &inputs(n, 1 << 20, data_seed ^ 4),
                chunk_size, client_seed, order_seed, "hashtogram_hashed",
            );

            let oracle = Hashtogram::new(HashtogramParams::direct(200, 1.0, 0.1), 76);
            assert_fused_matches_materialized(
                &OracleStream(&oracle), &inputs(n, 200, data_seed ^ 5),
                chunk_size, client_seed, order_seed, "hashtogram_direct",
            );

            let oracle = BassilySmithOracle::new(1 << 16, 1.0, 256, 77);
            assert_fused_matches_materialized(
                &OracleStream(&oracle), &inputs(n, 1 << 16, data_seed ^ 6),
                chunk_size, client_seed, order_seed, "bassily_smith_oracle",
            );

            let oracle = KrrOracle::new(24, 1.0);
            assert_fused_matches_materialized(
                &OracleStream(&oracle), &inputs(n, 24, data_seed ^ 7),
                chunk_size, client_seed, order_seed, "krr",
            );

            let oracle = Rappor::new(100, 1.0);
            assert_fused_matches_materialized(
                &OracleStream(&oracle), &inputs(n, 100, data_seed ^ 8),
                chunk_size, client_seed, order_seed, "rappor",
            );
        }
    }
}
