//! # ldp-heavy-hitters
//!
//! A from-scratch Rust implementation of **"Heavy Hitters and the
//! Structure of Local Privacy"** (Bun, Nelson, Stemmer — PODS 2018):
//! locally differentially private heavy hitters with worst-case error
//! optimal in every parameter, plus the paper's structural results
//! (advanced grouposition, pure-LDP composition for randomized response,
//! the GenProt approximate→pure transformation, and the matching lower
//! bound).
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture, and
//! `EXPERIMENTS.md` for the reproduction of every quantitative claim.
//!
//! ```no_run
//! use ldp_heavy_hitters::prelude::*;
//!
//! let n: u64 = 1 << 18;
//! let data: Vec<u64> = Workload::zipf(1 << 32, 1.2).generate(n as usize, 1);
//! let params = SketchParams::optimal(n, 32, 2.0, 0.05);
//! let mut server = ExpanderSketch::new(params, 42);
//! // The batched parallel pipeline: chunked client respond on worker
//! // threads, sharded server ingest, then finish. Bit-for-bit identical
//! // to the serial `run_heavy_hitter` at any chunk/thread count.
//! let run = run_heavy_hitter_batched(&mut server, &data, 7, &BatchPlan::default());
//! let heavy_hitters: Vec<(u64, f64)> = run.estimates;
//! ```

pub use hh_codes as codes;
pub use hh_core as core;
pub use hh_freq as freq;
pub use hh_graph as graph;
pub use hh_hash as hash;
pub use hh_lower as lower;
pub use hh_math as math;
pub use hh_sim as sim;
pub use hh_structure as structure;

/// Most-used items in one import.
pub mod prelude {
    pub use hh_core::baselines::{Bitstogram, BitstogramParams, ScanHeavyHitters, ScanParams};
    pub use hh_core::traits::HeavyHitterProtocol;
    pub use hh_core::{ExpanderSketch, SketchParams};
    pub use hh_freq::hashtogram::{Hashtogram, HashtogramParams};
    pub use hh_freq::traits::{FrequencyOracle, LocalRandomizer, RandomizerInput};
    pub use hh_freq::wire::{FrameError, WireError, WireFrames, WireReport, WireShard};
    pub use hh_math::{client_rng, derive_seed, seeded_rng, FinishScratch};
    pub use hh_sim::registry::ProtocolSpec;
    pub use hh_sim::{
        build_hh, build_oracle, run_heavy_hitter, run_heavy_hitter_batched,
        run_heavy_hitter_distributed, run_oracle, run_oracle_batched, run_oracle_distributed,
        run_pipelined, BatchPlan, DistPlan, DynHhProtocol, DynOracle, MergeOrder, PipelineConfig,
        Workload,
    };
    pub use hh_structure::{ApproxComposedRr, ComposedRr, GenProt};
}
