//! Emoji survey: the small-domain regime (the paper's Apple/iOS
//! motivation), where `n > |X|` and the right tool is a frequency oracle
//! plus a domain scan (the complementary case noted under Theorem 3.13).
//!
//! Compares the Hashtogram oracle against generalized randomized response
//! and one-hot RAPPOR on the same data, printing per-element estimates
//! and per-user costs.
//!
//! ```sh
//! cargo run --release --example emoji_survey
//! ```

use ldp_heavy_hitters::freq::krr::KrrOracle;
use ldp_heavy_hitters::freq::rappor::Rappor;
use ldp_heavy_hitters::prelude::*;

const EMOJI: [&str; 12] = [
    "😂", "❤️", "🤣", "👍", "😭", "🙏", "😘", "🥰", "😍", "😊", "🎉", "😁",
];

fn main() {
    let n: usize = 200_000; // n >> |X| = 12
    let domain = EMOJI.len() as u64;
    let eps = 1.0;
    let beta = 0.05;

    // Zipf-flavored emoji popularity.
    let workload = Workload::zipf(domain, 1.1);
    let data = workload.generate(n, 11);
    let truth: Vec<u64> = (0..domain)
        .map(|e| data.iter().filter(|&&x| x == e).count() as u64)
        .collect();

    println!("emoji survey: n = {n} users, |X| = {domain} emoji, eps = {eps}\n");

    // Three oracles, same data, same budget.
    let queries: Vec<u64> = (0..domain).collect();
    let mut hashtogram = Hashtogram::new(HashtogramParams::direct(domain, eps, beta), 21);
    let ht = run_oracle(&mut hashtogram, &data, &queries, 22);
    let mut krr = KrrOracle::new(domain, eps);
    let kr = run_oracle(&mut krr, &data, &queries, 23);
    let mut rappor = Rappor::new(domain, eps);
    let rp = run_oracle(&mut rappor, &data, &queries, 24);

    println!(
        "{:<6} {:>9} {:>12} {:>12} {:>12}",
        "emoji", "true", "hashtogram", "k-RR", "RAPPOR"
    );
    for e in 0..domain as usize {
        println!(
            "{:<6} {:>9} {:>12.0} {:>12.0} {:>12.0}",
            EMOJI[e], truth[e], ht.answers[e], kr.answers[e], rp.answers[e]
        );
    }

    let max_err = |answers: &[f64]| -> f64 {
        answers
            .iter()
            .zip(&truth)
            .map(|(&a, &t)| (a - t as f64).abs())
            .fold(0.0, f64::max)
    };
    println!(
        "\nmax |error|: hashtogram {:.0}, k-RR {:.0}, RAPPOR {:.0}",
        max_err(&ht.answers),
        max_err(&kr.answers),
        max_err(&rp.answers)
    );
    println!(
        "report bits: hashtogram {}, k-RR {}, RAPPOR {}",
        ht.report_bits, kr.report_bits, rp.report_bits
    );
    println!(
        "noise scale O(sqrt(n)/eps) ≈ {:.0}; all three are within a small factor on this tiny domain",
        (n as f64).sqrt() / eps * 2.0
    );

    // The scan-based heavy-hitter protocol on the same domain.
    let mut scan = ScanHeavyHitters::new(ScanParams::new(n as u64, domain, eps, beta), 25);
    let run = run_heavy_hitter(&mut scan, &data, 26);
    println!(
        "\nscan-based heavy hitters found {} emoji above Δ = {:.0}",
        run.estimates.len(),
        run.detection_threshold
    );
}
