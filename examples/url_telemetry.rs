//! URL telemetry: the paper's motivating deployment (Chrome/RAPPOR-style
//! homepage telemetry) on a domain far too large to scan.
//!
//! `|X| = 2^40` stands in for "all reasonable-length URLs". A scan-based
//! protocol would need 2^40 oracle queries; `PrivateExpanderSketch`
//! decodes the heavy URLs directly from O~(√n) sketch state. The example
//! also prints the cost a one-hot RAPPOR client would pay, to contrast
//! per-user work.
//!
//! ```sh
//! cargo run --release --example url_telemetry
//! ```

use ldp_heavy_hitters::core::verify;
use ldp_heavy_hitters::prelude::*;

fn main() {
    let n: usize = 1 << 18;
    let domain_bits = 40; // "every URL on the web"
    let eps = 4.0;
    let beta = 0.1;

    let params = SketchParams::optimal(n as u64, domain_bits, eps, beta);
    let delta = params.detection_threshold();

    // Telemetry-shaped traffic: a couple of heavily-visited homepages
    // above the detection threshold plus a giant uniform long tail.
    // (Real ids would be hashes of URLs; here they are literal u64s.)
    let homepage_ids: Vec<u64> = vec![0x3B_7796_7A21, 0x1C_EB00_DA72]; // < 2^40
    let frac = (1.3 * delta / n as f64).min(0.45);
    let workload = Workload::planted(
        1u64 << domain_bits,
        homepage_ids.iter().map(|&id| (id, frac)).collect(),
    );
    let data = workload.generate(n, 3);

    println!("URL telemetry: n = {n} browsers, |X| = 2^{domain_bits} URLs");
    println!("detection threshold Δ = {:.0} visits", delta);

    let mut server = ExpanderSketch::new(params, 99);
    let run = run_heavy_hitter(&mut server, &data, 100);

    let hist = verify::histogram(&data);
    println!("\ntop URLs under eps = {eps} local DP:");
    for &(x, est) in &run.estimates {
        let truth = *hist.get(&x).unwrap_or(&0);
        let marker = if homepage_ids.contains(&x) {
            "planted"
        } else {
            "      "
        };
        println!("  {x:#14x}  est {est:>9.0}  true {truth:>7}  {marker}");
    }
    let recovered = homepage_ids
        .iter()
        .filter(|id| run.estimates.iter().any(|&(x, _)| x == **id))
        .count();
    println!(
        "\nrecovered {recovered}/{} planted homepages",
        homepage_ids.len()
    );

    // Cost contrast with the industrial baseline from the paper's intro.
    println!("\nper-user report size:");
    println!(
        "  PrivateExpanderSketch : {} bits (two Hadamard reports)",
        run.report_bits
    );
    println!(
        "  one-hot RAPPOR        : 2^{domain_bits} bits — one bit per possible URL (infeasible)"
    );
    println!("\nserver-side:");
    println!(
        "  sketch memory {} KiB, total server time {:?} — no 2^{domain_bits} scan anywhere",
        run.memory_bytes / 1024,
        run.server_time()
    );
    assert!(recovered == homepage_ids.len(), "lost a planted homepage");
}
