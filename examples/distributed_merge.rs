//! Distributed collection: the URL-telemetry workload split across a
//! fleet of 8 simulated collector nodes.
//!
//! Each browser's report is serialized through its wire encoding (the
//! bytes that would leave the device), routed to one of 8 collectors,
//! and absorbed into that collector's private shard. The shards are
//! merged tree-wise — the way a real aggregation tier fans in — and the
//! merged state is finished centrally. Because shards are exact integer
//! aggregates, the fleet's answer is bit-for-bit the single-server
//! answer, which the example verifies.
//!
//! ```sh
//! cargo run --release --example distributed_merge
//! ```

use ldp_heavy_hitters::core::verify;
use ldp_heavy_hitters::prelude::*;
use ldp_heavy_hitters::sim::registry::{build_hh, ProtocolSpec};
use ldp_heavy_hitters::sim::{run_dyn_heavy_hitter, run_dyn_heavy_hitter_distributed};

fn main() {
    let n: usize = 1 << 17;
    let domain_bits = 40; // "every URL on the web"
    let eps = 4.0;
    let beta = 0.1;
    let collectors = 8;

    // The protocol comes from the registry by name — swap the string to
    // fan any other registered protocol across the same fleet.
    let spec = ProtocolSpec {
        n: n as u64,
        domain: 1u64 << domain_bits,
        eps,
        beta,
        seed: 99,
    };
    let single = build_hh("expander_sketch", &spec).expect("registered protocol");
    let delta = single.detection_threshold();

    // Telemetry-shaped traffic: heavily-visited homepages above the
    // detection threshold plus a giant uniform long tail.
    let homepage_ids: Vec<u64> = vec![0x3B_7796_7A21, 0x1C_EB00_DA72]; // < 2^40
    let frac = (1.3 * delta / n as f64).min(0.45);
    let workload = Workload::planted(
        1u64 << domain_bits,
        homepage_ids.iter().map(|&id| (id, frac)).collect(),
    );
    let data = workload.generate(n, 3);

    println!("URL telemetry across a collector fleet");
    println!("  n = {n} browsers, |X| = 2^{domain_bits} URLs, {collectors} collector nodes");

    // Single server: the reference answer.
    let mut single = single;
    let reference = run_dyn_heavy_hitter(single.as_mut(), &data, 100);

    // The fleet: wire round-trip, 8 shards, tree merge. Same seed, so
    // the clients send byte-identical reports.
    let plan = DistPlan {
        collectors,
        ..DistPlan::default()
    };
    let mut fleet = build_hh("expander_sketch", &spec).expect("registered protocol");
    let distributed = run_dyn_heavy_hitter_distributed(fleet.as_mut(), &data, 100, &plan);

    assert_eq!(
        distributed.estimates, reference.estimates,
        "fleet answer diverged from the single server"
    );
    println!(
        "\n  wire traffic: {} bytes total, {:.2} bytes/user (claimed {} bits/report)",
        distributed.wire_bytes,
        distributed.wire_bytes_per_user(),
        distributed.report_bits,
    );
    println!(
        "  phases: respond+encode {:?}, collect {:?}, merge {:?}, finish {:?}",
        distributed.client_total,
        distributed.server_ingest,
        distributed.server_merge,
        distributed.server_finish,
    );

    let hist = verify::histogram(&data);
    println!("\n  top URLs under eps = {eps} local DP (fleet == single server):");
    for &(x, est) in &distributed.estimates {
        let truth = *hist.get(&x).unwrap_or(&0);
        let marker = if homepage_ids.contains(&x) {
            "planted"
        } else {
            "       "
        };
        println!("    {x:#14x}  est {est:>9.0}  true {truth:>7}  {marker}");
    }
    let recovered = homepage_ids
        .iter()
        .filter(|id| distributed.estimates.iter().any(|&(x, _)| x == **id))
        .count();
    println!(
        "\n  recovered {recovered}/{} planted homepages, bit-for-bit across {collectors} nodes",
        homepage_ids.len()
    );
    assert!(recovered == homepage_ids.len(), "lost a planted homepage");
}
