//! Quickstart: run `PrivateExpanderSketch` end to end on a planted
//! workload and check its Definition 3.1 contract.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ldp_heavy_hitters::core::verify;
use ldp_heavy_hitters::prelude::*;

fn main() {
    // A population of users, each holding one 24-bit item.
    let n: usize = 1 << 18;
    let domain_bits = 24;
    let eps = 4.0; // total per-user privacy budget
    let beta = 0.1; // target failure probability

    // The protocol advertises its detection threshold Δ up front; plant
    // two elements comfortably above it and one well below.
    let params = SketchParams::optimal(n as u64, domain_bits, eps, beta);
    let delta = params.detection_threshold();
    println!("n = {n}, |X| = 2^{domain_bits}, eps = {eps}, beta = {beta}");
    println!(
        "detection threshold Δ = {:.0} users ({:.1}% of n)",
        delta,
        100.0 * delta / n as f64
    );

    let heavy_frac = 1.5 * delta / n as f64;
    let workload = Workload::planted(
        1 << domain_bits,
        vec![
            (0xC0FFEE, heavy_frac),
            (0xBEEF, heavy_frac),
            (0x50DA, 0.2 * delta / n as f64), // too light to be promised
        ],
    );
    let data = workload.generate(n, 1);

    // Run the protocol: every user sends one eps-LDP message.
    let mut server = ExpanderSketch::new(params.clone(), 42);
    let run = run_heavy_hitter(&mut server, &data, 7);

    println!("\nrecovered heavy hitters (estimate vs truth):");
    let hist = verify::histogram(&data);
    for &(x, est) in &run.estimates {
        let truth = *hist.get(&x).unwrap_or(&0);
        println!("  {x:#10x}  est {est:>9.0}   true {truth:>7}");
    }

    let report = verify::check_contract(&data, &run.estimates, delta);
    println!("\nDefinition 3.1 check at Δ:");
    println!("  missed Δ-heavy elements : {:?}", report.missed_heavy);
    println!(
        "  max estimation error     : {:.0} (bound {:.0})",
        report.max_estimation_error,
        params.estimation_error_bound()
    );
    println!(
        "  list length              : {} (budget O(n/Δ) = {:.1})",
        report.list_len, report.list_budget
    );

    println!("\nresources:");
    println!("  per-user communication   : {} bits", run.report_bits);
    println!("  mean per-user time       : {:?}", run.user_time());
    println!("  server time              : {:?}", run.server_time());
    println!(
        "  server memory            : {} KiB",
        run.memory_bytes / 1024
    );
    assert!(report.missed_heavy.is_empty(), "contract violated!");
    println!("\nOK: every Δ-heavy element recovered.");
}
