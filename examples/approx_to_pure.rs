//! Approximate → pure LDP with GenProt (Section 6 of the paper).
//!
//! Start from a *genuinely* approximate randomizer — one that with
//! probability δ reveals its input outright, so its pure-DP level is
//! infinite. Wrap it in GenProt: each user now announces only an index
//! into a public candidate list (a few bits), the announcement is
//! certifiably `10ε`-pure-LDP, and the reconstructed reports still
//! estimate the histogram.
//!
//! ```sh
//! cargo run --release --example approx_to_pure
//! ```

use ldp_heavy_hitters::freq::randomizers::RevealingRandomizer;
use ldp_heavy_hitters::prelude::*;
use ldp_heavy_hitters::structure::audit;

fn main() {
    let k = 8u64; // domain: favourite pizza topping, say
                  // Theorem 6.1's regime: eps <= 1/4 and delta = o(1/(n log n)).
    let (eps, delta) = (0.25, 1e-9);
    let n: u64 = 20_000;

    let base = RevealingRandomizer::new(k, eps, delta);
    let inputs: Vec<u64> = (0..k).collect();
    println!("base randomizer: ({eps}, {delta})-LDP");
    println!(
        "  exact pure-DP level  : {:?}  (reveals inputs with prob {delta})",
        audit::exact_pure_epsilon(&base, &inputs)
    );
    println!(
        "  exact delta at eps   : {:.2e}",
        audit::exact_delta(&base, eps, &inputs)
    );

    // Wrap in GenProt. The Theorem 6.1 guideline is T = 2·ln(2n/β);
    // at eps = 1/4 the (½+ε)^T term decays like 0.75^T, so we take the
    // slightly larger T that drives the whole TV bound below β.
    let beta = 0.05;
    let t = GenProt::<RevealingRandomizer>::recommended_t(n, beta).max(64);
    let gp = GenProt::new(base, eps, t, 4242);
    println!("\nGenProt with T = {t} public candidates per user:");
    println!(
        "  report size          : {} bits (vs log|Y| for the raw report)",
        gp.report_bits()
    );

    // Exact privacy certificate per user (fixing of public randomness).
    let mut worst: f64 = 0.0;
    for user in 0..50u64 {
        worst = worst.max(gp.exact_epsilon(user, &inputs));
    }
    println!(
        "  exact eps of transformed report (worst of 50 users): {:.4}  <= 10eps = {:.4}",
        worst,
        10.0 * eps
    );
    assert!(worst <= 10.0 * eps + 1e-9);

    // Utility: reconstruct reports and estimate the histogram.
    let mut rng = seeded_rng(77);
    let mut counts = vec![0f64; k as usize];
    let mut truth = vec![0u64; k as usize];
    for i in 0..n {
        // 40% of users love topping 2; the rest are uniform.
        let x = if i % 5 < 2 { 2 } else { i % k };
        truth[x as usize] += 1;
        let g = gp.respond(i, x, &mut rng);
        let y = gp.reconstruct(i, g);
        // The reconstructed report is a (clipped) GRR sample; debias like
        // plain GRR restricted to the non-reveal region.
        if y < k {
            counts[y as usize] += 1.0;
        }
    }
    let e = eps.exp();
    let p_true = e / (e + k as f64 - 1.0);
    let p_other = 1.0 / (e + k as f64 - 1.0);
    println!("\nestimated histogram from reconstructed reports:");
    println!("{:>8} {:>9} {:>10}", "topping", "true", "estimate");
    for x in 0..k as usize {
        let est = (counts[x] - n as f64 * p_other) / (p_true - p_other);
        println!("{x:>8} {:>9} {est:>10.0}", truth[x]);
    }
    println!(
        "\nTV bound between transformed and original protocol: {:.3e}",
        gp.tv_bound(n, delta)
    );
    println!("pure 10eps-LDP achieved; approximate privacy bought nothing (Theorem 6.1).");
}
