//! Streaming collection with durable checkpoints on the **pipelined
//! collector runtime**: a URL-telemetry stream over 6 epochs on a
//! 4-collector actor fleet, surviving a collector crash and answering a
//! top-k query mid-stream — with the protocol chosen from the registry
//! by name.
//!
//! Each epoch, a jittered batch of browsers reports; every report is
//! wire-encoded and sent down its collector's **bounded queue** the
//! moment it is encoded, so the collector actors absorb — and encode
//! their `WireShard` checkpoints — concurrently with the client-side
//! encoding of what follows (backpressure instead of epoch barriers).
//! When a collector crashes, its live aggregate is gone; recovery
//! decodes the last snapshot and replays only the spooled reports
//! since. Because chunks carry sequence numbers, shards are exact
//! integer state and the codec round-trips bit-for-bit, the stream's
//! final answer is identical to a single serial pass over the whole
//! population — crash, concurrency and all — which this example
//! verifies.
//!
//! ```sh
//! cargo run --release --example streaming_recovery
//! ```

use ldp_heavy_hitters::core::verify;
use ldp_heavy_hitters::prelude::*;
use ldp_heavy_hitters::sim::registry::{build_hh, ProtocolSpec};
use ldp_heavy_hitters::sim::{
    run_dyn_heavy_hitter, run_pipelined, DynHhStream, PipelineConfig, StreamPlan, StreamWorkload,
};

fn main() {
    let epochs = 6u64;
    let epoch_base: usize = 1 << 14;
    let n_expected = epochs as usize * epoch_base;
    let domain_bits = 40; // "every URL on the web"
    let collectors = 4;
    let seed = 400;

    // The protocol is a *runtime string*: swap "expander_sketch" for any
    // other registered name and the rest of this file is unchanged.
    let spec = ProtocolSpec {
        n: n_expected as u64,
        domain: 1u64 << domain_bits,
        eps: 4.0,
        beta: 0.1,
        seed: 99,
    };
    let server = build_hh("expander_sketch", &spec).expect("registered protocol");
    let delta = server.detection_threshold();

    // Telemetry-shaped traffic: heavily-visited homepages above the
    // detection threshold plus a giant uniform long tail, with ±20%
    // arrival jitter between epochs.
    let homepage_ids: Vec<u64> = vec![0x3B_7796_7A21, 0x1C_EB00_DA72]; // < 2^40
    let frac = (1.3 * delta / n_expected as f64).min(0.45);
    let stream_workload = StreamWorkload::stationary(
        Workload::planted(
            spec.domain,
            homepage_ids.iter().map(|&id| (id, frac)).collect(),
        ),
        0.2,
    );

    println!("URL telemetry as a live stream (pipelined collector runtime)");
    println!(
        "  {epochs} epochs x ~{epoch_base} browsers, |X| = 2^{domain_bits} URLs, \
         {collectors} collector actors, checkpoint every epoch, queue depth 4"
    );

    let plan = StreamPlan {
        epoch_size: epoch_base,
        checkpoint_every: 1,
        dist: DistPlan {
            collectors,
            // Small RPC chunks so every epoch fans out across all 4
            // nodes (and a crashed node has spooled traffic to replay).
            chunk_size: 1 << 12,
            ..DistPlan::default()
        },
    };
    let config = PipelineConfig {
        queue_depth: 4,
        workers: 1,
    };

    let mut all_data: Vec<u64> = Vec::new();
    let (shard, stats, snapshot_bytes) = {
        let ingest = DynHhStream(server.as_ref());
        let all_data = &mut all_data;
        let (shard, stats, ()) = run_pipelined(&ingest, &plan, &config, seed, |session| {
            for epoch in 0..epochs {
                let batch = stream_workload.generate_epoch(epoch, epoch_base, 3);
                println!("\n  epoch {epoch}: {} arrivals", batch.len());
                session.ingest_epoch(&batch);
                all_data.extend_from_slice(&batch);

                if epoch == 2 {
                    // Mid-stream top-k, answered from the merged
                    // decoded snapshots (fetched into pooled buffers)
                    // — the live shards keep streaming untouched.
                    let snap = session.snapshot_shard().expect("checkpointed every epoch");
                    let mut fresh =
                        build_hh("expander_sketch", &spec).expect("registered protocol");
                    fresh.finish_shard(snap);
                    let mid = fresh.finish();
                    println!(
                        "    mid-stream top-k from snapshots ({} users so far): \
                             {} URLs above threshold",
                        session.users(),
                        mid.len()
                    );
                    for &(x, est) in mid.iter().take(3) {
                        println!("      {x:#14x}  est {est:>9.0}");
                    }
                }

                if epoch == 3 {
                    // A collector actor dies right after the epoch-3
                    // checkpoint…
                    session.kill_collector(2);
                    println!("    collector 2 crashed (live shard lost; spool keeps receiving)");
                }
                if epoch == 4 {
                    // …and comes back one epoch later: decode the
                    // snapshot, replay only the spooled epoch —
                    // inside the actor, while ingest continues.
                    let recovery = session.recover_collector(2);
                    println!(
                        "    collector 2 recovered from its checkpoint at {} epochs, \
                             replayed {} spooled reports in {:?}",
                        recovery.from_epoch.expect("had checkpointed"),
                        recovery.replayed_reports,
                        recovery.elapsed,
                    );
                }
            }
        });
        let snapshot_bytes = stats.snapshot_bytes_last as usize;
        (shard, stats, snapshot_bytes)
    };

    let mut fleet = server;
    fleet.finish_shard(shard);
    let estimates = fleet.finish();

    // The reference: one serial pass over the identical population,
    // through the same registry-built protocol.
    let mut single = build_hh("expander_sketch", &spec).expect("registered protocol");
    let reference = run_dyn_heavy_hitter(single.as_mut(), &all_data, seed);
    assert_eq!(
        estimates, reference.estimates,
        "streamed answer diverged from the serial single-server answer"
    );

    println!(
        "\n  stream totals: {} users, {} wire bytes, {} checkpoints ({} snapshot B across {} nodes)",
        stats.users, stats.wire_bytes, stats.checkpoints, snapshot_bytes, collectors,
    );
    println!(
        "  runtime: peak queue occupancy {} chunk(s), producer stalled {:?} total",
        stats.max_queue_occupancy, stats.producer_stall,
    );
    println!(
        "  recovery: {} crash(es) recovered, {} reports replayed, {:?} total",
        stats.recoveries, stats.replayed_reports, stats.recovery_total,
    );

    let hist = verify::histogram(&all_data);
    println!(
        "\n  final top URLs under eps = {} local DP (stream == serial, crash and all):",
        spec.eps
    );
    for &(x, est) in &estimates {
        let truth = *hist.get(&x).unwrap_or(&0);
        let marker = if homepage_ids.contains(&x) {
            "planted"
        } else {
            "       "
        };
        println!("    {x:#14x}  est {est:>9.0}  true {truth:>7}  {marker}");
    }
    let recovered = homepage_ids
        .iter()
        .filter(|id| estimates.iter().any(|&(x, _)| x == **id))
        .count();
    println!(
        "\n  recovered {recovered}/{} planted homepages, bit-for-bit across {epochs} epochs \
         and one collector crash",
        homepage_ids.len()
    );
    assert!(recovered == homepage_ids.len(), "lost a planted homepage");
}
