//! Streaming collection with durable checkpoints: a URL-telemetry
//! stream over 6 epochs on a 4-collector fleet, surviving a collector
//! crash and answering a top-k query mid-stream.
//!
//! Each epoch, a jittered batch of browsers reports; every report is
//! wire-encoded, routed to a collector, and absorbed into that node's
//! shard. At every epoch boundary each collector *checkpoints*: its
//! shard is serialized through the `WireShard` codec — the bytes a real
//! node would write to stable storage. When a collector crashes, its
//! live aggregate is gone; recovery decodes the last snapshot and
//! replays only the spooled reports since. Because shards are exact
//! integer state and the codec round-trips bit-for-bit, the stream's
//! final answer is identical to a single serial pass over the whole
//! population — crash and all — which this example verifies.
//!
//! ```sh
//! cargo run --release --example streaming_recovery
//! ```

use ldp_heavy_hitters::core::verify;
use ldp_heavy_hitters::prelude::*;
use ldp_heavy_hitters::sim::{HhStream, StreamEngine, StreamPlan, StreamWorkload};

fn main() {
    let epochs = 6u64;
    let epoch_base: usize = 1 << 14;
    let n_expected = epochs as usize * epoch_base;
    let domain_bits = 40; // "every URL on the web"
    let eps = 4.0;
    let beta = 0.1;
    let collectors = 4;
    let seed = 400;

    let params = SketchParams::optimal(n_expected as u64, domain_bits, eps, beta);
    let delta = params.detection_threshold();

    // Telemetry-shaped traffic: heavily-visited homepages above the
    // detection threshold plus a giant uniform long tail, with ±20%
    // arrival jitter between epochs.
    let homepage_ids: Vec<u64> = vec![0x3B_7796_7A21, 0x1C_EB00_DA72]; // < 2^40
    let frac = (1.3 * delta / n_expected as f64).min(0.45);
    let stream_workload = StreamWorkload::stationary(
        Workload::planted(
            1u64 << domain_bits,
            homepage_ids.iter().map(|&id| (id, frac)).collect(),
        ),
        0.2,
    );

    println!("URL telemetry as a live stream");
    println!(
        "  {epochs} epochs x ~{epoch_base} browsers, |X| = 2^{domain_bits} URLs, \
         {collectors} collector nodes, checkpoint every epoch"
    );

    let server = ExpanderSketch::new(params.clone(), 99);
    let plan = StreamPlan {
        epoch_size: epoch_base,
        checkpoint_every: 1,
        dist: DistPlan {
            collectors,
            // Small RPC chunks so every epoch fans out across all 4
            // nodes (and a crashed node has spooled traffic to replay).
            chunk_size: 1 << 12,
            ..DistPlan::default()
        },
    };
    let mut engine = StreamEngine::new(HhStream(&server), plan, seed);
    let mut all_data: Vec<u64> = Vec::new();

    for epoch in 0..epochs {
        let batch = stream_workload.generate_epoch(epoch, epoch_base, 3);
        println!("\n  epoch {epoch}: {} arrivals", batch.len());
        engine.ingest_epoch(&batch);
        all_data.extend_from_slice(&batch);

        if epoch == 2 {
            // Mid-stream top-k, answered from the merged decoded
            // snapshots — the live shards keep streaming untouched.
            let mid = engine.finish_at_epoch(&mut ExpanderSketch::new(params.clone(), 99));
            println!(
                "    mid-stream top-k from snapshots ({} users so far): {} URLs above threshold",
                engine.users(),
                mid.len()
            );
            for &(x, est) in mid.iter().take(3) {
                println!("      {x:#14x}  est {est:>9.0}");
            }
        }

        if epoch == 3 {
            // A collector node dies right after the epoch-3 checkpoint…
            engine.kill_collector(2);
            println!("    collector 2 crashed (live shard lost; spool keeps receiving)");
        }
        if epoch == 4 {
            // …and comes back one epoch later: decode the snapshot,
            // replay only the spooled epoch.
            let recovery = engine.recover_collector(2);
            println!(
                "    collector 2 recovered from its checkpoint at {} epochs, \
                 replayed {} spooled reports in {:?}",
                recovery.from_epoch.expect("had checkpointed"),
                recovery.replayed_reports,
                recovery.elapsed,
            );
        }
    }

    let snapshot_bytes: usize = engine.snapshot_sizes().iter().flatten().sum();
    let stats_users = engine.users();
    let (shard, stats) = engine.into_live_shard();
    let mut fleet = server;
    fleet.finish_shard(shard);
    let estimates = fleet.finish();

    // The reference: one serial pass over the identical population.
    let mut single = ExpanderSketch::new(params, 99);
    let reference = run_heavy_hitter(&mut single, &all_data, seed);
    assert_eq!(
        estimates, reference.estimates,
        "streamed answer diverged from the serial single-server answer"
    );

    println!(
        "\n  stream totals: {} users, {} wire bytes, {} checkpoints ({} snapshot B across {} nodes)",
        stats_users, stats.wire_bytes, stats.checkpoints, snapshot_bytes, collectors,
    );
    println!(
        "  recovery: {} crash(es) recovered, {} reports replayed, {:?} total",
        stats.recoveries, stats.replayed_reports, stats.recovery_total,
    );

    let hist = verify::histogram(&all_data);
    println!("\n  final top URLs under eps = {eps} local DP (stream == serial, crash and all):");
    for &(x, est) in &estimates {
        let truth = *hist.get(&x).unwrap_or(&0);
        let marker = if homepage_ids.contains(&x) {
            "planted"
        } else {
            "       "
        };
        println!("    {x:#14x}  est {est:>9.0}  true {truth:>7}  {marker}");
    }
    let recovered = homepage_ids
        .iter()
        .filter(|id| estimates.iter().any(|&(x, _)| x == **id))
        .count();
    println!(
        "\n  recovered {recovered}/{} planted homepages, bit-for-bit across {epochs} epochs \
         and one collector crash",
        homepage_ids.len()
    );
    assert!(recovered == homepage_ids.len(), "lost a planted homepage");
}
