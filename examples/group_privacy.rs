//! Advanced grouposition (Section 4): in the local model, the privacy of
//! a *group* of k users degrades like √k — not linearly as in the central
//! model.
//!
//! Prints, for growing k, the central-model bound kε, the paper's
//! Theorem 4.2 bound, and the *exact* group privacy loss of k randomized
//! responses (computable in closed form) — showing the measured curve
//! hugging the √k bound.
//!
//! ```sh
//! cargo run --release --example group_privacy
//! ```

use ldp_heavy_hitters::structure::grouposition;

fn main() {
    let eps = 0.1;
    let delta = 1e-6;
    println!("per-user eps = {eps}, delta = {delta}\n");
    println!(
        "{:>6} {:>14} {:>16} {:>18}",
        "k", "central k*eps", "Thm 4.2 bound", "exact RR loss"
    );
    for k in [1u64, 4, 16, 64, 256, 1024, 4096, 16384] {
        let central = grouposition::central_model_epsilon(k, eps);
        let advanced = grouposition::grouposition_epsilon(k, eps, delta);
        let exact = grouposition::rr_group_epsilon_exact(k, eps, delta);
        println!("{k:>6} {central:>14.3} {advanced:>16.3} {exact:>18.3}");
        assert!(exact <= advanced + 1e-9, "theorem violated?!");
    }

    println!("\ninterpretation:");
    println!("  - exact loss and the Theorem 4.2 bound grow ~sqrt(k);");
    println!("  - the central-model bound grows linearly and is vastly");
    println!("    pessimistic in the local model — the structural fact");
    println!("    behind both the max-information bound (Thm 4.5) and the");
    println!("    packing lower bounds of Section 7.");

    // Where does advanced beat basic? (the crossover the paper plots
    // implicitly)
    let crossover = ldp_heavy_hitters::math::bounds::grouposition_crossover(eps, delta);
    println!("\nadvanced beats basic grouposition from k = {crossover} onwards");
}
