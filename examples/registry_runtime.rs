//! Registry-driven protocol selection over the pipelined collector
//! runtime: every protocol this workspace knows, chosen by *name* at
//! runtime and streamed through long-lived collector actors — no
//! per-protocol plumbing anywhere in this file.
//!
//! For each registered heavy-hitter protocol the example runs a short
//! multi-epoch stream (bounded queues, per-epoch checkpoints, one
//! collector crash + recovery) and verifies the answer bit-for-bit
//! against the serial reference run; for each registered frequency
//! oracle it checks a planted element's estimate the same way.
//!
//! ```sh
//! cargo run --release --example registry_runtime
//! ```

use ldp_heavy_hitters::sim::registry::{
    build_hh, build_oracle, ProtocolSpec, HH_PROTOCOLS, ORACLES,
};
use ldp_heavy_hitters::sim::{
    run_dyn_heavy_hitter, run_dyn_oracle, run_pipelined, DistPlan, DynHhStream, DynOracleStream,
    MergeOrder, PipelineConfig, StreamPlan, Workload,
};

/// One small streaming shape shared by every protocol: 4 collector
/// actors, 6 epochs, checkpoints every 2 epochs, a crash after epoch 3
/// recovered after epoch 4.
fn stream_plan(n: usize) -> (StreamPlan, PipelineConfig) {
    (
        StreamPlan {
            epoch_size: n / 6 + 1,
            checkpoint_every: 2,
            dist: DistPlan {
                collectors: 4,
                chunk_size: n / 24 + 1,
                threads: 1,
                merge: MergeOrder::Tree,
            },
        },
        PipelineConfig {
            queue_depth: 3,
            workers: 1,
        },
    )
}

fn main() {
    let n = 24_000usize;
    let heavy = 7u64;
    let spec = ProtocolSpec {
        n: n as u64,
        domain: 512,
        eps: 4.0,
        beta: 0.2,
        seed: 71,
    };
    let data = Workload::planted(spec.domain, vec![(heavy, 0.45)]).generate(n, 72);
    let run_seed = 73;

    println!("protocol registry x pipelined collector runtime");
    println!(
        "  spec: n = {n}, |X| = {}, eps = {}, beta = {} — one spec, every registered protocol",
        spec.domain, spec.eps, spec.beta
    );
    println!(
        "  stream: 6 epochs, 4 collector actors (bounded queues, depth 3), checkpoint \
         every 2 epochs, collector 2 crashes after epoch 3 and recovers after epoch 4\n"
    );

    println!("heavy-hitter protocols ({}):", HH_PROTOCOLS.len());
    for entry in HH_PROTOCOLS {
        let server = build_hh(entry.name, &spec).expect("registry entry builds");
        let (plan, config) = stream_plan(n);
        let (shard, stats, ()) = run_pipelined(
            &DynHhStream(server.as_ref()),
            &plan,
            &config,
            run_seed,
            |s| {
                let mut fed = 0usize;
                while fed < n {
                    let hi = (fed + plan.epoch_size).min(n);
                    s.ingest_epoch(&data[fed..hi]);
                    fed = hi;
                    if s.epoch() == 3 {
                        s.kill_collector(2);
                    }
                    if s.epoch() == 4 {
                        s.recover_collector(2);
                    }
                }
            },
        );
        let mut server = server;
        server.finish_shard(shard);
        let estimates = server.finish();

        // The reference: the same protocol, rebuilt by name, run through
        // the serial one-shot driver. Bit-for-bit equal — crash and all.
        let mut reference = build_hh(entry.name, &spec).expect("registry entry builds");
        let serial = run_dyn_heavy_hitter(reference.as_mut(), &data, run_seed);
        assert_eq!(
            estimates, serial.estimates,
            "{}: pipelined stream diverged from serial",
            entry.name
        );

        let found = estimates.iter().any(|&(x, _)| x == heavy);
        println!(
            "  {:>16}: {} epochs | {} checkpoints | {} recovered | peak queue {} | {} — {}",
            entry.name,
            stats.epochs,
            stats.checkpoints,
            stats.recoveries,
            stats.max_queue_occupancy,
            if found {
                "planted element recovered"
            } else {
                "planted element missed"
            },
            entry.about,
        );
    }

    println!("\nfrequency oracles ({}):", ORACLES.len());
    for entry in ORACLES {
        let oracle = build_oracle(entry.name, &spec).expect("registry entry builds");
        let (plan, config) = stream_plan(n);
        let (shard, _, ()) = run_pipelined(
            &DynOracleStream(oracle.as_ref()),
            &plan,
            &config,
            run_seed,
            |s| {
                let mut fed = 0usize;
                while fed < n {
                    let hi = (fed + plan.epoch_size).min(n);
                    s.ingest_epoch(&data[fed..hi]);
                    fed = hi;
                    if s.epoch() == 3 {
                        s.kill_collector(2);
                    }
                    if s.epoch() == 4 {
                        s.recover_collector(2);
                    }
                }
            },
        );
        let mut oracle = oracle;
        oracle.finish_shard(shard);
        oracle.finalize();
        let streamed = oracle.estimate(heavy);

        let mut reference = build_oracle(entry.name, &spec).expect("registry entry builds");
        let serial = run_dyn_oracle(reference.as_mut(), &data, &[heavy], run_seed);
        assert_eq!(
            streamed, serial.answers[0],
            "{}: pipelined stream diverged from serial",
            entry.name
        );
        println!(
            "  {:>16}: est(planted) = {streamed:>8.1} (true {:.0}) — {}",
            entry.name,
            0.45 * n as f64,
            entry.about,
        );
    }

    println!("\nevery registered protocol ran the same pipelined runtime from one spec,");
    println!("and every answer matched the serial reference bit-for-bit.");
}
